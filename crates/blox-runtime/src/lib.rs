//! Deployment runtime for the Blox toolkit.
//!
//! Mirrors the paper's three-component implementation (§6.3, Figure 17):
//!
//! * **CentralScheduler** — the [`RuntimeBackend`] plugs the scheduling
//!   loop of `blox-core` into real (emulated-hardware) execution;
//! * **WorkerManager** — one per node, launching and preempting emulated
//!   training processes, storing leases and metrics locally;
//! * **BloxClientLibrary** — a data-loader wrapper that checks its lease
//!   each iteration and a metric collector that pushes key/value metrics.
//!
//! The paper uses gRPC; per DESIGN.md §5 we substitute a hand-rolled
//! length-prefixed binary codec ([`wire`]) over in-process channels, which
//! preserves the message patterns (launch/preempt RPCs, metric pushes,
//! lease checks) while keeping the workspace dependency-light. Training
//! itself is emulated: worker threads run time-scaled iterations, so a
//! multi-day trace replays in seconds while exercising the exact
//! launch / lease / preempt / metric code paths.
//!
//! The lease protocol implements both designs evaluated in Figure 19 —
//! centralized renewal (every job round-trips to the scheduler) and
//! Blox's optimistic renewal (leases auto-renew; the scheduler revokes
//! through the worker manager) — plus the two-phase expiration that keeps
//! distributed workers' checkpoints consistent.

#![warn(missing_docs)]

pub mod fault;
pub mod lease;
pub mod runtime;
pub mod wire;

pub use fault::{FaultySender, FaultyTransport};
pub use lease::{LeaseMode, LeaseTable, TwoPhaseExit};
pub use runtime::{
    apply_status_message, placement_iter_time, EmulatedCluster, RuntimeBackend, RuntimeConfig,
    ServeEnd, SimClock, WorkerManager,
};
pub use wire::{Endpoint, Message, Transport, WireSender};
