//! Fault-injecting decorators over the runtime transport abstractions.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and [`FaultySender`] wraps
//! any [`WireSender`], perturbing traffic according to a seeded, scripted
//! [`FaultPlan`](blox_core::fault::FaultPlan): messages can be dropped,
//! duplicated, delayed, swapped with their successor, or blacked out
//! entirely during scripted partition windows. The decorators sit *under*
//! the protocol — the worker manager, scheduler, and client code cannot
//! tell a faulty link from a healthy one — so the chaos suites exercise
//! exactly the code paths a real lossy network would.
//!
//! Time semantics: the plan's event axis and `delay_s` are in simulated
//! seconds, read from the shared [`SimClock`], so one plan means the same
//! thing at any emulation time scale. Delays are applied on the receive
//! path (a delayed message becomes visible once the clock passes its
//! release point); on the send path, where no receive loop exists to age
//! messages, a delayed message is flushed by the next send (or when the
//! sender is dropped) once its release point has passed — FIFO order is
//! preserved within a link, like a store-and-forward queue.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use blox_core::error::Result;
use blox_core::fault::{FaultState, FaultVerdict};
use parking_lot::Mutex;

use crate::runtime::SimClock;
use crate::wire::{Message, Transport, WireSender};

/// Granularity of the receive-side polling loop while waiting for a
/// delayed message to mature or new traffic to arrive.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

// Receive side ---------------------------------------------------------------

struct RecvState {
    faults: FaultState,
    /// Admitted messages waiting for their release time, in link order.
    pending: VecDeque<(f64, Message)>,
    /// One-slot reorder buffer: delivered after the next admitted message.
    held: Option<(f64, Message)>,
    /// The inner link died; drain `pending`, then surface the error.
    dead: bool,
}

impl RecvState {
    /// Apply the plan's verdict to one freshly received message.
    fn admit(&mut self, now: f64, msg: Message) {
        match self.faults.verdict(now) {
            FaultVerdict::Drop => {}
            FaultVerdict::Deliver {
                copies,
                delay_s,
                reorder,
            } => {
                let release = now + delay_s;
                if reorder && self.held.is_none() {
                    self.held = Some((release, msg));
                    return;
                }
                for _ in 0..copies {
                    self.pending.push_back((release, msg.clone()));
                }
                if let Some(held) = self.held.take() {
                    self.pending.push_back(held);
                }
            }
        }
    }

    /// Pop the head message if its release time has passed (head-of-line
    /// delay, like a store-and-forward pipe).
    fn pop_due(&mut self, now: f64) -> Option<Message> {
        // A dead link can no longer age messages forward; flush in order.
        if self.dead {
            return self.pending.pop_front().map(|(_, m)| m);
        }
        match self.pending.front() {
            Some((release, _)) if *release <= now => self.pending.pop_front().map(|(_, m)| m),
            _ => None,
        }
    }
}

/// A [`Transport`] decorator injecting deterministic receive-path faults.
///
/// Send-path traffic passes through untouched; wrap the link's sender in a
/// [`FaultySender`] to perturb the opposite direction independently.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    clock: Arc<SimClock>,
    state: Mutex<RecvState>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Decorate `inner`, drawing verdicts from `faults` on the given
    /// simulated clock.
    pub fn new(inner: T, faults: FaultState, clock: Arc<SimClock>) -> Self {
        FaultyTransport {
            inner,
            clock,
            state: Mutex::new(RecvState {
                faults,
                pending: VecDeque::new(),
                held: None,
                dead: false,
            }),
        }
    }

    /// The wrapped transport (e.g. to reach a concrete sender handle).
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Drain everything the inner transport has ready, then pop one due
    /// message if any.
    fn poll_once(&self) -> Result<Option<Message>> {
        let now = self.clock.sim_now();
        let mut state = self.state.lock();
        if !state.dead {
            loop {
                match self.inner.try_recv() {
                    Ok(Some(msg)) => state.admit(now, msg),
                    Ok(None) => break,
                    Err(e) => {
                        // Release the held reorder slot: there is no "next
                        // message" to swap with any more.
                        if let Some(held) = state.held.take() {
                            state.pending.push_back(held);
                        }
                        state.dead = true;
                        if state.pending.is_empty() {
                            return Err(e);
                        }
                        break;
                    }
                }
            }
        } else if state.pending.is_empty() {
            // Surface the original failure mode through the inner link.
            return self.inner.try_recv().map(|_| None);
        }
        Ok(state.pop_due(now))
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&self, msg: &Message) -> Result<()> {
        self.inner.send(msg)
    }

    fn recv(&self) -> Result<Message> {
        loop {
            if let Some(msg) = self.poll_once()? {
                return Ok(msg);
            }
            // Block on the inner link so an idle wait costs no CPU; any
            // arrival (or a short tick, for delayed-message maturation)
            // re-enters the poll.
            match self.inner.recv_timeout(POLL_INTERVAL) {
                Ok(Some(msg)) => {
                    let now = self.clock.sim_now();
                    self.state.lock().admit(now, msg);
                }
                Ok(None) => {}
                Err(e) => {
                    let mut state = self.state.lock();
                    if let Some(held) = state.held.take() {
                        state.pending.push_back(held);
                    }
                    state.dead = true;
                    if state.pending.is_empty() {
                        return Err(e);
                    }
                }
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Message>> {
        self.poll_once()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(msg) = self.poll_once()? {
                return Ok(Some(msg));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let wait = (deadline - now).min(POLL_INTERVAL);
            match self.inner.recv_timeout(wait) {
                Ok(Some(msg)) => {
                    let sim_now = self.clock.sim_now();
                    self.state.lock().admit(sim_now, msg);
                }
                Ok(None) => {}
                Err(e) => {
                    let mut state = self.state.lock();
                    if let Some(held) = state.held.take() {
                        state.pending.push_back(held);
                    }
                    state.dead = true;
                    if state.pending.is_empty() {
                        return Err(e);
                    }
                }
            }
        }
    }
}

// Send side ------------------------------------------------------------------

struct SendState {
    inner: Box<dyn WireSender>,
    faults: FaultState,
    /// Messages waiting for their release time before hitting the wire.
    delayed: VecDeque<(f64, Message)>,
    /// One-slot reorder buffer: sent after the next admitted message.
    held: Option<Message>,
}

impl SendState {
    fn flush_due(&mut self, now: f64) -> Result<()> {
        while let Some((release, _)) = self.delayed.front() {
            if *release > now {
                break;
            }
            let (_, msg) = self.delayed.pop_front().expect("front exists");
            self.inner.send(&msg)?;
        }
        Ok(())
    }
}

impl Drop for SendState {
    fn drop(&mut self) {
        // Best-effort flush so delayed traffic is not silently lost when
        // the link closes in an orderly way (a crash drops the state
        // without running this, which is exactly crash semantics).
        if let Some(held) = self.held.take() {
            self.delayed.push_back((0.0, held));
        }
        for (_, msg) in std::mem::take(&mut self.delayed) {
            let _ = self.inner.send(&msg);
        }
    }
}

/// A [`WireSender`] decorator injecting deterministic send-path faults.
///
/// All clones share one decision stream and one delay queue, mirroring
/// how concurrent producer threads share one physical link.
#[derive(Clone)]
pub struct FaultySender {
    clock: Arc<SimClock>,
    state: Arc<Mutex<SendState>>,
}

impl FaultySender {
    /// Decorate `inner`, drawing verdicts from `faults` on the given
    /// simulated clock.
    pub fn new(inner: Box<dyn WireSender>, faults: FaultState, clock: Arc<SimClock>) -> Self {
        FaultySender {
            clock,
            state: Arc::new(Mutex::new(SendState {
                inner,
                faults,
                delayed: VecDeque::new(),
                held: None,
            })),
        }
    }

    /// Encode and send one message through the fault layer.
    pub fn send(&self, msg: &Message) -> Result<()> {
        let now = self.clock.sim_now();
        let mut state = self.state.lock();
        state.flush_due(now)?;
        match state.faults.verdict(now) {
            FaultVerdict::Drop => Ok(()),
            FaultVerdict::Deliver {
                copies,
                delay_s,
                reorder,
            } => {
                if reorder && state.held.is_none() {
                    state.held = Some(msg.clone());
                    return Ok(());
                }
                if delay_s > 0.0 {
                    let release = now + delay_s;
                    for _ in 0..copies {
                        state.delayed.push_back((release, msg.clone()));
                    }
                } else {
                    for _ in 0..copies {
                        state.inner.send(msg)?;
                    }
                }
                if let Some(held) = state.held.take() {
                    if delay_s > 0.0 {
                        state.delayed.push_back((now + delay_s, held));
                    } else {
                        state.inner.send(&held)?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl WireSender for FaultySender {
    fn send(&self, msg: &Message) -> Result<()> {
        FaultySender::send(self, msg)
    }

    fn clone_sender(&self) -> Box<dyn WireSender> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Endpoint;
    use blox_core::fault::{FaultEvent, FaultPlan, LinkFaults};
    use blox_core::ids::JobId;

    fn progress(i: u64) -> Message {
        Message::Progress {
            job: JobId(i),
            iters: i as f64,
        }
    }

    /// A real-time clock: 1 simulated second per wall second.
    fn wall_clock() -> Arc<SimClock> {
        Arc::new(SimClock::new(1.0))
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let (a, b) = Endpoint::pair();
        let faulty = FaultyTransport::new(b, FaultPlan::new(1).state(0), wall_clock());
        for i in 0..10 {
            a.send(&progress(i)).unwrap();
        }
        for i in 0..10 {
            assert_eq!(faulty.recv().unwrap(), progress(i));
        }
        assert_eq!(faulty.try_recv().unwrap(), None);
    }

    #[test]
    fn full_drop_blackholes_the_link() {
        let (a, b) = Endpoint::pair();
        let plan = FaultPlan::new(2).with_base(LinkFaults {
            drop_p: 1.0,
            ..LinkFaults::default()
        });
        let faulty = FaultyTransport::new(b, plan.state(0), wall_clock());
        for i in 0..20 {
            a.send(&progress(i)).unwrap();
        }
        assert_eq!(faulty.try_recv().unwrap(), None);
        assert_eq!(
            faulty.recv_timeout(Duration::from_millis(30)).unwrap(),
            None
        );
    }

    #[test]
    fn duplication_delivers_twice() {
        let (a, b) = Endpoint::pair();
        let plan = FaultPlan::new(3).with_base(LinkFaults {
            dup_p: 1.0,
            ..LinkFaults::default()
        });
        let faulty = FaultyTransport::new(b, plan.state(0), wall_clock());
        a.send(&progress(7)).unwrap();
        assert_eq!(faulty.recv().unwrap(), progress(7));
        assert_eq!(faulty.recv().unwrap(), progress(7));
        assert_eq!(faulty.try_recv().unwrap(), None);
    }

    #[test]
    fn reorder_swaps_adjacent_messages() {
        let (a, b) = Endpoint::pair();
        let plan = FaultPlan::new(4).with_base(LinkFaults {
            reorder_p: 1.0,
            ..LinkFaults::default()
        });
        let faulty = FaultyTransport::new(b, plan.state(0), wall_clock());
        a.send(&progress(0)).unwrap();
        a.send(&progress(1)).unwrap();
        // With reorder_p = 1 every message wants to swap: 0 is held, 1 is
        // held... so drive with a third to flush: 0 held, 1 delivered
        // after being admitted (held slot occupied), then 0.
        a.send(&progress(2)).unwrap();
        let first = faulty.recv().unwrap();
        let second = faulty.recv().unwrap();
        assert_eq!(first, progress(1));
        assert_eq!(second, progress(0));
    }

    #[test]
    fn delay_holds_messages_until_release() {
        let (a, b) = Endpoint::pair();
        // 0.02 simulated seconds = 20 ms wall at scale 1.0.
        let plan = FaultPlan::new(5).with_base(LinkFaults {
            delay_s: 0.05,
            ..LinkFaults::default()
        });
        let faulty = FaultyTransport::new(b, plan.state(0), wall_clock());
        a.send(&progress(9)).unwrap();
        // Give the channel a moment, then confirm the message is admitted
        // but not yet visible.
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(faulty.try_recv().unwrap(), None);
        let got = faulty
            .recv_timeout(Duration::from_millis(500))
            .unwrap()
            .expect("delayed message must mature");
        assert_eq!(got, progress(9));
    }

    #[test]
    fn partition_window_then_heal() {
        let (a, b) = Endpoint::pair();
        // Partition covers the first 0.05 simulated seconds.
        let plan = FaultPlan::new(6).with_event(FaultEvent::Partition {
            from: 0.0,
            until: 0.05,
        });
        let faulty = FaultyTransport::new(b, plan.state(0), wall_clock());
        a.send(&progress(1)).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(faulty.try_recv().unwrap(), None, "inside the window");
        std::thread::sleep(Duration::from_millis(60));
        a.send(&progress(2)).unwrap();
        let got = faulty
            .recv_timeout(Duration::from_millis(500))
            .unwrap()
            .expect("post-heal traffic flows");
        assert_eq!(got, progress(2));
    }

    #[test]
    fn pending_messages_survive_peer_disconnect() {
        let (a, b) = Endpoint::pair();
        let faulty = FaultyTransport::new(b, FaultPlan::new(7).state(0), wall_clock());
        a.send(&progress(1)).unwrap();
        // Let the message reach the inner channel, then admit it.
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(faulty.try_recv().unwrap(), Some(progress(1)));
        a.send(&progress(2)).unwrap();
        drop(a);
        // The queued message is still delivered before the error surfaces.
        assert_eq!(faulty.recv().unwrap(), progress(2));
        assert!(faulty.recv().is_err());
    }

    #[test]
    fn faulty_sender_drops_and_duplicates() {
        let (tx, rx) = crate::wire::wire_bus();
        let plan = FaultPlan::new(8).with_base(LinkFaults {
            dup_p: 1.0,
            ..LinkFaults::default()
        });
        let sender = FaultySender::new(Box::new(tx), plan.state(0), wall_clock());
        sender.send(&progress(3)).unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(100)).unwrap(),
            Some(progress(3))
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(100)).unwrap(),
            Some(progress(3))
        );

        let (tx, rx) = crate::wire::wire_bus();
        let plan = FaultPlan::new(9).with_base(LinkFaults {
            drop_p: 1.0,
            ..LinkFaults::default()
        });
        let sender = FaultySender::new(Box::new(tx), plan.state(0), wall_clock());
        sender.send(&progress(4)).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(30)).unwrap(), None);
    }

    #[test]
    fn faulty_sender_flushes_delayed_on_drop() {
        let (tx, rx) = crate::wire::wire_bus();
        let plan = FaultPlan::new(10).with_base(LinkFaults {
            delay_s: 1e6, // Far future: only the drop-flush can deliver it.
            ..LinkFaults::default()
        });
        let sender = FaultySender::new(Box::new(tx), plan.state(0), wall_clock());
        sender.send(&progress(5)).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(30)).unwrap(), None);
        drop(sender);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(100)).unwrap(),
            Some(progress(5))
        );
    }
}
