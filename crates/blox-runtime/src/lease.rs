//! Lease-based preemption (paper §7).
//!
//! Round-based DL schedulers preempt by *lease*: a job may run while its
//! lease is valid. Two designs are implemented and compared in Figure 19:
//!
//! * **Centralized renewal** — every job round-trips to the central
//!   scheduler each round to ask whether its lease extends. Latency grows
//!   with cluster size because the scheduler serializes the checks.
//! * **Optimistic renewal** (Blox's design) — leases auto-renew; the
//!   scheduler *revokes* through the job's local `WorkerManager`, so the
//!   per-iteration check is a local lookup and costs O(1) regardless of
//!   cluster size.
//!
//! For distributed jobs, revocation uses a **two-phase exit**: the
//! scheduler revokes at rank 0 only; rank 0 picks `exit_iter = i + 1` and
//! propagates it to the other shards, so every shard stops at the same
//! iteration boundary and the checkpoint is consistent (no deadlock from
//! revocations landing at different times).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use blox_core::ids::JobId;
use parking_lot::RwLock;

use crate::wire::{Endpoint, Message};

/// Which lease protocol the runtime uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseMode {
    /// Every check round-trips to the central scheduler.
    Centralized,
    /// Checks are local; the scheduler pushes revocations (Blox default).
    Optimistic,
}

/// Per-job lease state held by a worker manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// The job may keep running.
    Valid,
    /// The job must stop at (the end of) the given iteration.
    ExitAt(u64),
}

/// The worker-local lease store the client library consults.
///
/// Shared between the worker manager thread (writer) and the emulated
/// training jobs (readers); reads are lock-free in the common case via
/// `RwLock` read guards.
#[derive(Debug, Default)]
pub struct LeaseTable {
    leases: RwLock<BTreeMap<JobId, LeaseState>>,
}

impl LeaseTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grant (or re-grant) a lease at launch.
    pub fn grant(&self, job: JobId) {
        self.leases.write().insert(job, LeaseState::Valid);
    }

    /// Revoke: the job must exit after `exit_iter`.
    pub fn revoke_at(&self, job: JobId, exit_iter: u64) {
        self.leases
            .write()
            .insert(job, LeaseState::ExitAt(exit_iter));
    }

    /// Drop a finished job's lease.
    pub fn remove(&self, job: JobId) {
        self.leases.write().remove(&job);
    }

    /// The optimistic per-iteration check: may `job` start iteration
    /// `iter`? O(1), local.
    pub fn may_run(&self, job: JobId, iter: u64) -> bool {
        match self.leases.read().get(&job) {
            Some(LeaseState::Valid) => true,
            Some(LeaseState::ExitAt(limit)) => iter <= *limit,
            None => false,
        }
    }

    /// Current state, if any.
    pub fn state(&self, job: JobId) -> Option<LeaseState> {
        self.leases.read().get(&job).copied()
    }
}

/// Two-phase exit coordinator for distributed jobs.
///
/// Phase 1: the revocation reaches rank 0, which fixes
/// `exit_iter = current + 1`. Phase 2: rank 0 propagates `exit_iter` to
/// every shard's lease table *before* starting iteration `current + 1`;
/// all shards then exit together at the end of `exit_iter`.
#[derive(Debug)]
pub struct TwoPhaseExit {
    shards: Vec<Arc<LeaseTable>>,
}

impl TwoPhaseExit {
    /// Coordinator over the lease tables of every worker hosting a shard.
    pub fn new(shards: Vec<Arc<LeaseTable>>) -> Self {
        TwoPhaseExit { shards }
    }

    /// Execute both phases for `job`, whose rank 0 is at iteration
    /// `current_iter`. Returns the agreed exit iteration.
    pub fn revoke(&self, job: JobId, current_iter: u64) -> u64 {
        let exit_iter = current_iter + 1;
        for table in &self.shards {
            table.revoke_at(job, exit_iter);
        }
        exit_iter
    }

    /// True once every shard has the exit decision recorded.
    pub fn is_consistent(&self, job: JobId) -> bool {
        let mut decided = None;
        for table in &self.shards {
            match table.state(job) {
                Some(LeaseState::ExitAt(i)) => match decided {
                    None => decided = Some(i),
                    Some(prev) if prev == i => {}
                    Some(_) => return false,
                },
                _ => return false,
            }
        }
        decided.is_some()
    }
}

// Figure 19 measurement harness ---------------------------------------------

/// Measure one *centralized* lease-renewal cycle for `n_jobs` jobs: every
/// job sends a `LeaseCheck` through the wire codec and waits for the
/// scheduler's reply; the scheduler handles checks serially (it is one
/// process). Returns the wall-clock duration of the full cycle.
pub fn centralized_renewal_cycle(n_jobs: u32) -> Duration {
    let (scheduler_side, worker_side) = Endpoint::pair();
    let server = std::thread::spawn(move || {
        for _ in 0..n_jobs + 1 {
            match scheduler_side.recv() {
                Ok(Message::LeaseCheck { job }) => {
                    scheduler_side
                        .send(&Message::LeaseStatus { job, valid: true })
                        .expect("worker alive");
                }
                Ok(other) => panic!("unexpected message {other:?}"),
                Err(_) => return,
            }
        }
    });

    // One warm-up round trip so thread scheduling cost is excluded.
    worker_side
        .send(&Message::LeaseCheck {
            job: JobId(u64::MAX),
        })
        .expect("scheduler alive");
    let _ = worker_side.recv().expect("scheduler alive");
    let start = Instant::now();
    for i in 0..n_jobs {
        worker_side
            .send(&Message::LeaseCheck {
                job: JobId(i as u64),
            })
            .expect("scheduler alive");
        let reply = worker_side.recv().expect("scheduler alive");
        assert!(matches!(reply, Message::LeaseStatus { valid: true, .. }));
    }
    let elapsed = start.elapsed();
    server.join().expect("server thread");
    elapsed
}

/// Measure one *optimistic* renewal cycle for `n_jobs` jobs: each job does
/// its local lease-table lookup; no scheduler round-trips.
pub fn optimistic_renewal_cycle(n_jobs: u32) -> Duration {
    let table = LeaseTable::new();
    for i in 0..n_jobs {
        table.grant(JobId(i as u64));
    }
    let start = Instant::now();
    for i in 0..n_jobs {
        assert!(table.may_run(JobId(i as u64), 1));
    }
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_lifecycle() {
        let t = LeaseTable::new();
        assert!(!t.may_run(JobId(1), 0), "no lease yet");
        t.grant(JobId(1));
        assert!(t.may_run(JobId(1), 1_000_000));
        t.revoke_at(JobId(1), 10);
        assert!(t.may_run(JobId(1), 10));
        assert!(!t.may_run(JobId(1), 11));
        t.remove(JobId(1));
        assert!(t.state(JobId(1)).is_none());
    }

    #[test]
    fn two_phase_exit_is_consistent_across_shards() {
        let shards: Vec<Arc<LeaseTable>> = (0..4).map(|_| Arc::new(LeaseTable::new())).collect();
        for s in &shards {
            s.grant(JobId(7));
        }
        let coord = TwoPhaseExit::new(shards.clone());
        assert!(!coord.is_consistent(JobId(7)));
        let exit = coord.revoke(JobId(7), 41);
        assert_eq!(exit, 42);
        assert!(coord.is_consistent(JobId(7)));
        // Every shard may run iteration 42 but not 43: they exit together.
        for s in &shards {
            assert!(s.may_run(JobId(7), 42));
            assert!(!s.may_run(JobId(7), 43));
        }
    }

    #[test]
    fn two_phase_detects_divergence() {
        let shards: Vec<Arc<LeaseTable>> = (0..2).map(|_| Arc::new(LeaseTable::new())).collect();
        shards[0].revoke_at(JobId(1), 5);
        shards[1].revoke_at(JobId(1), 6);
        let coord = TwoPhaseExit::new(shards);
        assert!(!coord.is_consistent(JobId(1)));
    }

    #[test]
    fn centralized_cycle_completes_and_scales_up() {
        let small = centralized_renewal_cycle(8);
        let large = centralized_renewal_cycle(512);
        assert!(large > small, "512 checks should cost more than 8");
    }

    #[test]
    fn optimistic_cycle_is_cheap() {
        let opt = optimistic_renewal_cycle(512);
        let central = centralized_renewal_cycle(512);
        assert!(
            opt < central,
            "optimistic {opt:?} should beat centralized {central:?}"
        );
    }
}
