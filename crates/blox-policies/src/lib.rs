//! Policy library for the Blox toolkit.
//!
//! Concrete instances of the paper's admission / scheduling / placement
//! abstractions (Tables 1 and 5):
//!
//! * **Admission**: [`admission::AcceptAll`], threshold-based FIFO release
//!   ([`admission::ThresholdAdmission`]), job-count quota
//!   ([`admission::QuotaAdmission`]).
//! * **Scheduling**: [`scheduling::Fifo`], [`scheduling::Las`],
//!   [`scheduling::Srtf`], discrete-LAS [`scheduling::Tiresias`],
//!   [`scheduling::Optimus`], [`scheduling::Gavel`],
//!   [`scheduling::Pollux`], [`scheduling::Themis`],
//!   [`scheduling::Synergy`], and the loss-based termination wrapper
//!   [`scheduling::LossTermination`].
//! * **Placement**: [`placement::FirstFreePlacement`],
//!   [`placement::ConsolidatedPlacement`],
//!   [`placement::TiresiasPlacement`] (skew heuristic),
//!   [`placement::ProfileGuidedPlacement`] (Tiresias+),
//!   [`placement::BandwidthAwarePlacement`] (intra-node NVLink pairs),
//!   [`placement::SynergyPlacement`] (CPU/DRAM aware).

pub mod admission;
pub mod placement;
pub mod scheduling;
