//! Policy library for the Blox toolkit.
//!
//! Concrete instances of the paper's admission / scheduling / placement
//! abstractions (Tables 1 and 5):
//!
//! * **Admission**: [`admission::AcceptAll`], threshold-based FIFO release
//!   ([`admission::ThresholdAdmission`]), job-count quota
//!   ([`admission::QuotaAdmission`]).
//! * **Scheduling**: [`scheduling::Fifo`], [`scheduling::Las`],
//!   [`scheduling::Srtf`], discrete-LAS [`scheduling::Tiresias`],
//!   [`scheduling::Optimus`], [`scheduling::Gavel`],
//!   [`scheduling::Pollux`], [`scheduling::Themis`],
//!   [`scheduling::Synergy`], and the loss-based termination wrapper
//!   [`scheduling::LossTermination`].
//! * **Placement**: [`placement::FirstFreePlacement`],
//!   [`placement::ConsolidatedPlacement`],
//!   [`placement::TiresiasPlacement`] (skew heuristic),
//!   [`placement::ProfileGuidedPlacement`] (Tiresias+),
//!   [`placement::BandwidthAwarePlacement`] (intra-node NVLink pairs),
//!   [`placement::SynergyPlacement`] (CPU/DRAM aware).

//!
//! Policies that only rank jobs (FIFO, LAS, SRTF, Tiresias) and every
//! planner-based placement policy opt into
//! [`blox_core::policy::SchedulingPolicy::stable_between_events`], which
//! lets the manager's event-driven fast path skip rounds in which every
//! active job is already running and no event is due. Adaptive policies
//! (Optimus, Pollux, Gavel, Themis, HyperBand, loss-based termination)
//! keep the conservative default and are stepped every round.

#![warn(missing_docs)]

pub mod admission;
pub mod placement;
pub mod scheduling;
