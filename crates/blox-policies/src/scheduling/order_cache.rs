//! Incrementally maintained priority orders for scheduling policies.
//!
//! Ordering policies (FIFO, Tiresias, ...) historically re-collected and
//! re-sorted every active job every round — O(n log n) per round even
//! when nothing changed. [`OrderCache`] keeps the previous round's order
//! and maintains it from the round loop's
//! [`StateDelta`](blox_core::delta::StateDelta)s: membership changes
//! (admissions, completions) are applied in O(log n) each, and a round's
//! `schedule` call only needs an O(n) sortedness verification — falling
//! back to a full re-sort exactly when a job's priority key actually
//! moved (e.g. a Tiresias queue demotion) or when no deltas were
//! delivered at all (standalone policy use).
//!
//! The cache is *pure acceleration*: every emitted decision is identical
//! to the full collect-and-sort over the same `JobState`, which the
//! policy unit tests and the byte-pinned golden fixtures verify.

use std::cmp::Ordering;
use std::collections::BTreeSet;

use blox_core::delta::StateDelta;
use blox_core::ids::JobId;
use blox_core::job::Job;
use blox_core::policy::SchedulingDecision;
use blox_core::state::JobState;

/// An id list kept sorted by a policy-supplied priority key.
///
/// Keys must totally order the active set; policies achieve this by
/// ending the key tuple with the job id (unique tie-breaker). Keys are
/// recomputed from the live `JobState` on demand, so keys may drift with
/// job progress — the sortedness check in [`OrderCache::decision`]
/// detects exactly that and repairs by re-sorting.
#[derive(Debug, Default, Clone)]
pub struct OrderCache {
    cached: Option<Vec<JobId>>,
}

impl OrderCache {
    /// Apply one round's membership changes. A cache that has not been
    /// primed by a `decision` call yet ignores deltas (it will build from
    /// a full sort on first use).
    pub fn apply_delta<K, F>(&mut self, delta: &StateDelta, job_state: &JobState, mut key: F)
    where
        K: PartialOrd,
        F: FnMut(&Job) -> K,
    {
        let Some(cached) = self.cached.as_mut() else {
            return;
        };
        if !delta.completed.is_empty() || !delta.migrated_out.is_empty() {
            let gone: BTreeSet<JobId> = delta
                .completed
                .iter()
                .chain(&delta.migrated_out)
                .copied()
                .collect();
            cached.retain(|id| !gone.contains(id));
        }
        for id in &delta.admitted {
            let Some(job) = job_state.get(*id) else {
                continue;
            };
            let k = key(job);
            let pos = cached.binary_search_by(|probe| match job_state.get(*probe) {
                Some(pj) => key(pj).partial_cmp(&k).unwrap_or(Ordering::Less),
                // A stale entry cannot be keyed; any answer keeps the
                // search total, and the next `decision` repairs order.
                None => Ordering::Less,
            });
            match pos {
                // Equal key ⇒ same id (keys embed the id): already cached.
                Ok(_) => {}
                Err(i) => cached.insert(i, *id),
            }
        }
    }

    /// Emit this round's decision in key order, maintaining the cache.
    ///
    /// Fast path: the cached order still matches the active set and is
    /// still sorted under the current keys — O(n) verification, no sort,
    /// no re-collection. Any mismatch (untracked membership change,
    /// priority-key movement) falls back to the full collect-and-sort,
    /// so the output is always byte-identical to the uncached policy.
    pub fn decision<K, F>(&mut self, job_state: &JobState, mut key: F) -> SchedulingDecision
    where
        K: PartialOrd,
        F: FnMut(&Job) -> K,
    {
        let prev = self.cached.take();
        if let Some(ids) = prev {
            if ids.len() == job_state.active_count() {
                let mut jobs: Vec<&Job> = Vec::with_capacity(ids.len());
                let mut intact = true;
                for id in &ids {
                    match job_state.get(*id) {
                        Some(job) => jobs.push(job),
                        None => {
                            intact = false;
                            break;
                        }
                    }
                }
                if intact {
                    let in_order = jobs.windows(2).all(|w| {
                        key(w[0])
                            .partial_cmp(&key(w[1]))
                            .expect("scheduling keys are finite")
                            != Ordering::Greater
                    });
                    if !in_order {
                        // A key moved (queue demotion, progress change):
                        // repair by re-sorting under the current keys.
                        jobs.sort_by(|a, b| {
                            key(a)
                                .partial_cmp(&key(b))
                                .expect("scheduling keys are finite")
                        });
                    }
                    self.cached = Some(jobs.iter().map(|j| j.id).collect());
                    return SchedulingDecision::from_priority_order(jobs);
                }
            }
        }
        // Full rebuild: collect and sort the active set from scratch.
        let mut jobs: Vec<&Job> = job_state.active().collect();
        jobs.sort_by(|a, b| {
            key(a)
                .partial_cmp(&key(b))
                .expect("scheduling keys are finite")
        });
        self.cached = Some(jobs.iter().map(|j| j.id).collect());
        SchedulingDecision::from_priority_order(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blox_core::profile::JobProfile;

    fn job(id: u64, arrival: f64) -> Job {
        Job::new(JobId(id), arrival, 1, 1e5, JobProfile::synthetic("t", 0.5))
    }

    fn key(j: &Job) -> (f64, JobId) {
        (j.arrival_time, j.id)
    }

    #[test]
    fn delta_maintenance_matches_full_sort() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![job(2, 20.0), job(5, 5.0)]);
        let mut cache = OrderCache::default();
        // Prime.
        let d0 = cache.decision(&js, key);
        assert_eq!(
            d0.allocations.iter().map(|(j, _)| j.0).collect::<Vec<_>>(),
            vec![5, 2]
        );
        // Admit one earlier, one later; complete job 5.
        js.add_new_jobs(vec![job(1, 1.0), job(3, 30.0)]);
        let mut delta = StateDelta::new();
        delta.admitted = vec![JobId(1), JobId(3)];
        cache.apply_delta(&delta, &js, key);
        js.set_status(JobId(5), blox_core::job::JobStatus::Completed)
            .unwrap();
        let pruned = js.prune_completed();
        let mut delta2 = StateDelta::new();
        delta2.completed = pruned;
        cache.apply_delta(&delta2, &js, key);
        let d = cache.decision(&js, key);
        assert_eq!(
            d.allocations.iter().map(|(j, _)| j.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn migrated_out_jobs_leave_the_cached_order() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![job(1, 1.0), job(2, 2.0), job(3, 3.0)]);
        let mut cache = OrderCache::default();
        cache.decision(&js, key);
        // Job 2 leaves this shard via cross-pod migration: the cache
        // must forget it exactly as it forgets completions.
        js.take_job(JobId(2)).unwrap();
        let mut delta = StateDelta::new();
        delta.migrated_out = vec![JobId(2)];
        cache.apply_delta(&delta, &js, key);
        let d = cache.decision(&js, key);
        assert_eq!(
            d.allocations.iter().map(|(j, _)| j.0).collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn untracked_membership_changes_force_rebuild() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![job(1, 1.0)]);
        let mut cache = OrderCache::default();
        cache.decision(&js, key);
        // Membership changed with no delta delivered: the length guard
        // must trigger a full rebuild, not a stale emit.
        js.add_new_jobs(vec![job(0, 0.5)]);
        let d = cache.decision(&js, key);
        assert_eq!(d.allocations[0].0, JobId(0));
    }

    #[test]
    fn key_movement_triggers_repair_sort() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![job(1, 10.0), job(2, 20.0)]);
        let mut cache = OrderCache::default();
        let by_service = |j: &Job| (j.attained_service, j.id);
        cache.decision(&js, by_service);
        // Job 1 gains service: order under the key flips.
        js.get_mut(JobId(1)).unwrap().attained_service = 99.0;
        let d = cache.decision(&js, by_service);
        assert_eq!(d.allocations[0].0, JobId(2));
    }
}
