//! Optimus: convergence-aware resource allocation via largest marginal
//! gain (EuroSys '18).
//!
//! Per the paper's Table 7 description: assign one GPU to each job in
//! expected-convergence order, then hand out the remaining GPUs one at a
//! time to the job whose estimated remaining time shrinks the most
//! (largest marginal gain). Remaining time comes from the loss-curve /
//! profile estimate the Optimus metric collector maintains.

use std::collections::BTreeMap;

use blox_core::cluster::{ClusterState, GpuType};
use blox_core::ids::JobId;
use blox_core::job::Job;
use blox_core::policy::{SchedulingDecision, SchedulingPolicy};
use blox_core::state::JobState;

/// Optimus scheduling policy.
#[derive(Debug, Clone)]
pub struct Optimus {
    /// Maximum GPUs a job may receive, as a multiple of its request
    /// (Optimus grows converging jobs past their ask; 4x by default).
    pub max_scale: u32,
    /// Absolute per-job GPU cap.
    pub max_gpus_per_job: u32,
}

impl Optimus {
    /// Default policy (scale jobs up to 4x their request, 16 GPUs max).
    pub fn new() -> Self {
        Optimus {
            max_scale: 4,
            max_gpus_per_job: 16,
        }
    }

    /// Estimated remaining seconds for `job` when run with `gpus` GPUs.
    ///
    /// Uses the loss curve to estimate iterations to convergence when the
    /// job converges before its requested end (the signal Optimus's metric
    /// collection exists to provide), else the full remaining iterations.
    fn remaining_time(job: &Job, gpus: u32) -> f64 {
        let conv_progress = job.profile.loss.convergence_progress(0.001).max(1e-3);
        let conv_iters = conv_progress * job.total_iters;
        let target = conv_iters.max(job.completed_iters);
        let remaining = (target - job.completed_iters).max(0.0);
        let iter = job
            .profile
            .iter_model
            .iter_time(gpus, GpuType::V100, true, 100.0);
        remaining * iter
    }

    fn cap(&self, job: &Job) -> u32 {
        (job.requested_gpus * self.max_scale).min(self.max_gpus_per_job)
    }
}

impl Default for Optimus {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulingPolicy for Optimus {
    fn schedule(
        &mut self,
        job_state: &JobState,
        cluster: &ClusterState,
        _now: f64,
    ) -> SchedulingDecision {
        let mut jobs: Vec<&Job> = job_state.active().collect();
        // Expected convergence order: soonest-to-finish first.
        jobs.sort_by(|a, b| {
            Self::remaining_time(a, a.requested_gpus)
                .partial_cmp(&Self::remaining_time(b, b.requested_gpus))
                .expect("remaining times are finite")
                .then(a.id.cmp(&b.id))
        });

        let total = cluster.total_gpus();
        let mut grants: BTreeMap<JobId, u32> = BTreeMap::new();
        let mut order: Vec<JobId> = Vec::new();
        let mut used = 0u32;

        // Pass 1: one GPU each, in convergence order.
        for job in &jobs {
            if used >= total {
                break;
            }
            grants.insert(job.id, 1);
            order.push(job.id);
            used += 1;
        }

        // Pass 2: remaining GPUs to the largest marginal gain.
        let by_id: BTreeMap<JobId, &Job> = jobs.iter().map(|j| (j.id, *j)).collect();
        while used < total {
            let mut best: Option<(f64, JobId)> = None;
            for id in &order {
                let job = by_id[id];
                let cur = grants[id];
                if cur >= self.cap(job) {
                    continue;
                }
                let gain = Self::remaining_time(job, cur) - Self::remaining_time(job, cur + 1);
                let better = match best {
                    None => gain > 0.0,
                    Some((bg, bid)) => gain > bg || (gain == bg && *id < bid),
                };
                if better {
                    best = Some((gain, *id));
                }
            }
            match best {
                Some((_, id)) => {
                    *grants.get_mut(&id).expect("granted above") += 1;
                    used += 1;
                }
                None => break,
            }
        }

        SchedulingDecision {
            allocations: order.into_iter().map(|id| (id, grants[&id])).collect(),
            batch_sizes: BTreeMap::new(),
            terminate: Vec::new(),
        }
    }

    fn name(&self) -> &str {
        "optimus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blox_core::cluster::NodeSpec;
    use blox_core::profile::JobProfile;

    fn cluster(nodes: u32) -> ClusterState {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), nodes);
        c
    }

    fn job(id: u64, iters: f64, done: f64) -> Job {
        let mut j = Job::new(JobId(id), 0.0, 2, iters, JobProfile::synthetic("toy", 1.0));
        j.completed_iters = done;
        j
    }

    #[test]
    fn closest_to_convergence_ranks_first() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![job(1, 100_000.0, 0.0), job(2, 100_000.0, 99_000.0)]);
        let d = Optimus::new().schedule(&js, &cluster(8), 0.0);
        assert_eq!(d.allocations[0].0, JobId(2));
    }

    #[test]
    fn everyone_gets_at_least_one_gpu_when_capacity_allows() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![job(1, 1e5, 0.0), job(2, 1e5, 0.0), job(3, 1e5, 0.0)]);
        let d = Optimus::new().schedule(&js, &cluster(8), 0.0);
        assert_eq!(d.allocations.len(), 3);
        assert!(d.allocations.iter().all(|(_, g)| *g >= 1));
    }

    #[test]
    fn spare_capacity_flows_to_marginal_gain() {
        let mut js = JobState::new();
        // One job with lots of remaining work: it should absorb extra GPUs.
        js.add_new_jobs(vec![job(1, 1e6, 0.0)]);
        let d = Optimus::new().schedule(&js, &cluster(8), 0.0);
        // Capped at 4x request (2 GPUs) = 8.
        assert_eq!(d.allocations[0].1, 8);
    }

    #[test]
    fn grants_respect_absolute_cap() {
        let mut js = JobState::new();
        let mut j = job(1, 1e6, 0.0);
        j.requested_gpus = 8;
        js.add_new_jobs(vec![j]);
        let d = Optimus::new().schedule(&js, &cluster(16), 0.0); // 64 GPUs
        assert!(d.allocations[0].1 <= 16);
    }

    #[test]
    fn oversubscribed_cluster_grants_one_each_to_front() {
        let mut js = JobState::new();
        js.add_new_jobs((0..10).map(|i| job(i, 1e5, 0.0)).collect());
        let d = Optimus::new().schedule(&js, &cluster(1), 0.0); // 4 GPUs
        assert_eq!(d.allocations.len(), 4);
        assert!(d.allocations.iter().all(|(_, g)| *g == 1));
    }
}
