//! Tiresias' discrete-LAS (Discretized Two-Dimensional LAS) policy.
//!
//! Jobs live in `K` priority queues partitioned by attained service
//! (GPU-seconds). Within a queue jobs run FIFO (by arrival); across queues
//! lower-service queues have strict priority. This discretization bounds
//! how often long jobs are preempted compared to continuous LAS while
//! still letting fresh jobs grab resources quickly.

use blox_core::cluster::ClusterState;
use blox_core::delta::StateDelta;
use blox_core::ids::JobId;
use blox_core::job::Job;
use blox_core::policy::{SchedulingDecision, SchedulingPolicy};
use blox_core::state::JobState;

use super::order_cache::OrderCache;

/// Discrete-LAS scheduling policy.
///
/// Maintains its priority queues incrementally from the round loop's
/// [`StateDelta`]s: a job's `(queue, arrival)` key only moves when its
/// attained service crosses a queue threshold (once per threshold over
/// its whole life), so with deltas delivered, most rounds verify the
/// cached order in O(n) instead of re-sorting the world — and membership
/// changes cost O(log n) each.
#[derive(Debug, Clone)]
pub struct Tiresias {
    /// Queue boundaries in GPU-seconds of attained service; a job with
    /// service `s` lives in the first queue whose threshold exceeds `s`
    /// (jobs beyond the last threshold live in the final queue).
    pub thresholds: Vec<f64>,
    cache: OrderCache,
}

impl Tiresias {
    /// The paper's default: two queues split at one GPU-hour.
    pub fn new() -> Self {
        Tiresias {
            thresholds: vec![3600.0],
            cache: OrderCache::default(),
        }
    }

    /// Custom queue thresholds (must be increasing).
    pub fn with_thresholds(thresholds: Vec<f64>) -> Self {
        Tiresias {
            thresholds,
            cache: OrderCache::default(),
        }
    }

    /// The total priority key: queue index, then FIFO within the queue,
    /// then the id as a unique tie-breaker.
    fn key(&self, job: &Job) -> (usize, f64, JobId) {
        (
            self.queue_of(job.attained_service),
            job.arrival_time,
            job.id,
        )
    }

    /// Queue index for a given attained service.
    pub fn queue_of(&self, attained_service: f64) -> usize {
        self.thresholds
            .iter()
            .position(|t| attained_service < *t)
            .unwrap_or(self.thresholds.len())
    }
}

impl Default for Tiresias {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulingPolicy for Tiresias {
    fn schedule(
        &mut self,
        job_state: &JobState,
        _cluster: &ClusterState,
        _now: f64,
    ) -> SchedulingDecision {
        // Split the borrow: the cache is `&mut self`, the key needs the
        // thresholds.
        let mut cache = std::mem::take(&mut self.cache);
        let decision = cache.decision(job_state, |job| self.key(job));
        self.cache = cache;
        decision
    }

    fn observe_delta(&mut self, delta: &StateDelta, job_state: &JobState) {
        let mut cache = std::mem::take(&mut self.cache);
        cache.apply_delta(delta, job_state, |job| self.key(job));
        self.cache = cache;
    }

    /// Pure priority ordering: safe for the event-driven fast path.
    fn stable_between_events(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "tiresias"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blox_core::cluster::NodeSpec;
    use blox_core::ids::JobId;
    use blox_core::profile::JobProfile;

    fn cluster() -> ClusterState {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 1);
        c
    }

    fn job(id: u64, arrival: f64, service: f64) -> Job {
        let mut j = Job::new(
            JobId(id),
            arrival,
            1,
            1e6,
            JobProfile::synthetic("toy", 1.0),
        );
        j.attained_service = service;
        j
    }

    #[test]
    fn queue_partitioning() {
        let t = Tiresias::with_thresholds(vec![100.0, 1000.0]);
        assert_eq!(t.queue_of(0.0), 0);
        assert_eq!(t.queue_of(99.9), 0);
        assert_eq!(t.queue_of(100.0), 1);
        assert_eq!(t.queue_of(5000.0), 2);
    }

    #[test]
    fn fresh_jobs_beat_old_heavy_jobs() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![
            job(1, 0.0, 10_000.0), // old, much service -> queue 1
            job(2, 500.0, 0.0),    // fresh -> queue 0
        ]);
        let d = Tiresias::new().schedule(&js, &cluster(), 600.0);
        assert_eq!(d.allocations[0].0, JobId(2));
    }

    #[test]
    fn fifo_within_queue_unlike_pure_las() {
        // Two jobs in the same (low) queue with different service: discrete
        // LAS orders them FIFO by arrival, not by service.
        let mut js = JobState::new();
        js.add_new_jobs(vec![
            job(1, 0.0, 900.0),  // earlier arrival, more service
            job(2, 100.0, 10.0), // later arrival, less service
        ]);
        let d = Tiresias::new().schedule(&js, &cluster(), 600.0);
        assert_eq!(d.allocations[0].0, JobId(1), "FIFO within a queue");
        // Continuous LAS would order job 2 first.
        let las = super::super::basic::Las::new().schedule(&js, &cluster(), 600.0);
        assert_eq!(las.allocations[0].0, JobId(2));
    }

    #[test]
    fn demotion_crossing_threshold_changes_order() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![job(1, 0.0, 3599.0), job(2, 50.0, 0.0)]);
        let d = Tiresias::new().schedule(&js, &cluster(), 600.0);
        assert_eq!(d.allocations[0].0, JobId(1), "both in queue 0: FIFO");
        // Job 1 crosses the one-GPU-hour boundary: demoted below job 2.
        js.get_mut(JobId(1)).unwrap().attained_service = 3601.0;
        let d = Tiresias::new().schedule(&js, &cluster(), 900.0);
        assert_eq!(d.allocations[0].0, JobId(2));
    }
}
