//! Loss-based job termination (paper §5.3, Figure 16).
//!
//! Wraps any scheduling policy and additionally marks jobs for early
//! termination once their reported loss — pushed by the client library
//! into the per-job metric store — is within the job's configured relative
//! threshold of the converged loss. This mirrors the paper's four-line
//! policy addition.

use blox_core::cluster::ClusterState;
use blox_core::policy::{SchedulingDecision, SchedulingPolicy};
use blox_core::state::JobState;

/// Decorator adding loss-based termination to an inner policy.
pub struct LossTermination<P: SchedulingPolicy> {
    inner: P,
    name: String,
}

impl<P: SchedulingPolicy> LossTermination<P> {
    /// Wrap an inner scheduling policy.
    pub fn new(inner: P) -> Self {
        let name = format!("{}+loss-term", inner.name());
        LossTermination { inner, name }
    }

    /// Access the wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: SchedulingPolicy> SchedulingPolicy for LossTermination<P> {
    fn schedule(
        &mut self,
        job_state: &JobState,
        cluster: &ClusterState,
        now: f64,
    ) -> SchedulingDecision {
        let mut decision = self.inner.schedule(job_state, cluster, now);
        // The four lines of the paper: check the collected loss metric
        // against the per-job threshold and mark converged jobs done.
        for job in job_state.active() {
            let Some(threshold) = job.loss_termination_threshold else {
                continue;
            };
            let Some(loss) = job.metric("loss") else {
                continue;
            };
            if loss <= job.profile.loss.l_min * (1.0 + threshold) {
                decision.terminate.push(job.id);
            }
        }
        decision
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduling::Fifo;
    use blox_core::cluster::NodeSpec;
    use blox_core::ids::JobId;
    use blox_core::job::Job;
    use blox_core::profile::JobProfile;

    fn cluster() -> ClusterState {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 1);
        c
    }

    fn job(id: u64, threshold: Option<f64>) -> Job {
        let mut j = Job::new(JobId(id), 0.0, 1, 1000.0, JobProfile::synthetic("toy", 1.0));
        j.loss_termination_threshold = threshold;
        j
    }

    #[test]
    fn converged_jobs_are_terminated() {
        let mut js = JobState::new();
        let mut a = job(1, Some(0.001));
        let l_min = a.profile.loss.l_min;
        a.push_metric("loss", l_min * 1.0005); // converged
        let mut b = job(2, Some(0.001));
        b.push_metric("loss", l_min * 1.5); // not converged
        js.add_new_jobs(vec![a, b]);
        let mut p = LossTermination::new(Fifo::new());
        let d = p.schedule(&js, &cluster(), 0.0);
        assert_eq!(d.terminate, vec![JobId(1)]);
        assert_eq!(p.name(), "fifo+loss-term");
    }

    #[test]
    fn jobs_without_threshold_or_metric_are_untouched() {
        let mut js = JobState::new();
        let mut a = job(1, None);
        a.push_metric("loss", 0.0);
        let b = job(2, Some(0.001)); // no loss metric yet
        js.add_new_jobs(vec![a, b]);
        let mut p = LossTermination::new(Fifo::new());
        let d = p.schedule(&js, &cluster(), 0.0);
        assert!(d.terminate.is_empty());
    }

    #[test]
    fn inner_ordering_is_preserved() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![job(2, None), job(1, None)]);
        let mut p = LossTermination::new(Fifo::new());
        let d = p.schedule(&js, &cluster(), 0.0);
        assert_eq!(d.allocations.len(), 2);
        assert_eq!(d.allocations[0].0, JobId(1));
    }
}
