//! The three baseline ordering policies: FIFO, LAS, and SRTF.

use blox_core::cluster::ClusterState;
use blox_core::delta::StateDelta;
use blox_core::ids::JobId;
use blox_core::job::Job;
use blox_core::policy::{SchedulingDecision, SchedulingPolicy};
use blox_core::state::JobState;

use super::order_cache::OrderCache;

/// Sort active jobs by a key and emit a requested-size decision.
fn decision_sorted_by<K, F>(job_state: &JobState, mut key: F) -> SchedulingDecision
where
    K: PartialOrd,
    F: FnMut(&Job) -> K,
{
    let mut jobs: Vec<&Job> = job_state.active().collect();
    jobs.sort_by(|a, b| {
        key(a)
            .partial_cmp(&key(b))
            .expect("scheduling keys are finite")
            .then(a.id.cmp(&b.id))
    });
    SchedulingDecision::from_priority_order(jobs)
}

/// First-in-first-out: jobs in arrival order (the Philly default and the
/// baseline every other scheduler in the paper is measured against).
///
/// Maintains its priority order incrementally from the round loop's
/// [`StateDelta`]s: arrival order is static, so when deltas are delivered
/// each round costs an O(active) emit plus O(log n) per membership change
/// — no per-round sort. Without deltas (standalone use) it falls back to
/// the full sort, producing the identical order.
#[derive(Debug, Default)]
pub struct Fifo {
    cache: OrderCache,
}

impl Fifo {
    /// New FIFO policy.
    pub fn new() -> Self {
        Fifo::default()
    }

    fn key(job: &Job) -> (f64, JobId) {
        (job.arrival_time, job.id)
    }
}

impl SchedulingPolicy for Fifo {
    fn schedule(
        &mut self,
        job_state: &JobState,
        _cluster: &ClusterState,
        _now: f64,
    ) -> SchedulingDecision {
        self.cache.decision(job_state, Self::key)
    }

    fn observe_delta(&mut self, delta: &StateDelta, job_state: &JobState) {
        self.cache.apply_delta(delta, job_state, Self::key);
    }

    /// Pure priority ordering: safe for the event-driven fast path.
    fn stable_between_events(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "fifo"
    }
}

/// Single-queue Least Attained Service: jobs sorted by GPU-seconds of
/// service received so far (Tiresias' simplified variant, 12 lines in the
/// paper's Table 3).
#[derive(Debug, Default)]
pub struct Las;

impl Las {
    /// New LAS policy.
    pub fn new() -> Self {
        Las
    }
}

impl SchedulingPolicy for Las {
    fn schedule(
        &mut self,
        job_state: &JobState,
        _cluster: &ClusterState,
        _now: f64,
    ) -> SchedulingDecision {
        decision_sorted_by(job_state, |j| j.attained_service)
    }

    /// Pure priority ordering: safe for the event-driven fast path.
    fn stable_between_events(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "las"
    }
}

/// Shortest Remaining Time First, using the profile-based remaining-time
/// estimate (one of the synthesizer's candidate policies in §5.2).
#[derive(Debug, Default)]
pub struct Srtf;

impl Srtf {
    /// New SRTF policy.
    pub fn new() -> Self {
        Srtf
    }
}

impl SchedulingPolicy for Srtf {
    fn schedule(
        &mut self,
        job_state: &JobState,
        _cluster: &ClusterState,
        _now: f64,
    ) -> SchedulingDecision {
        decision_sorted_by(job_state, |j| j.estimated_remaining_time())
    }

    /// Pure priority ordering: safe for the event-driven fast path.
    fn stable_between_events(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "srtf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blox_core::cluster::NodeSpec;
    use blox_core::ids::JobId;
    use blox_core::profile::JobProfile;

    fn cluster() -> ClusterState {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 1);
        c
    }

    fn job(id: u64, arrival: f64, iters: f64) -> Job {
        Job::new(
            JobId(id),
            arrival,
            1,
            iters,
            JobProfile::synthetic("toy", 1.0),
        )
    }

    #[test]
    fn fifo_orders_by_arrival() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![
            job(3, 30.0, 10.0),
            job(1, 10.0, 10.0),
            job(2, 20.0, 10.0),
        ]);
        let d = Fifo::new().schedule(&js, &cluster(), 0.0);
        let order: Vec<u64> = d.allocations.iter().map(|(j, _)| j.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn las_prioritizes_least_served() {
        let mut js = JobState::new();
        let mut a = job(1, 0.0, 10.0);
        a.attained_service = 500.0;
        let b = job(2, 100.0, 10.0); // zero service, later arrival
        js.add_new_jobs(vec![a, b]);
        let d = Las::new().schedule(&js, &cluster(), 0.0);
        assert_eq!(d.allocations[0].0, JobId(2));
    }

    #[test]
    fn las_breaks_ties_by_id() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![job(2, 0.0, 10.0), job(1, 0.0, 10.0)]);
        let d = Las::new().schedule(&js, &cluster(), 0.0);
        assert_eq!(d.allocations[0].0, JobId(1));
    }

    #[test]
    fn srtf_prioritizes_short_remaining_work() {
        let mut js = JobState::new();
        let long = job(1, 0.0, 100_000.0);
        let mut short = job(2, 50.0, 100_000.0);
        short.completed_iters = 99_900.0;
        js.add_new_jobs(vec![long, short]);
        let d = Srtf::new().schedule(&js, &cluster(), 0.0);
        assert_eq!(d.allocations[0].0, JobId(2));
    }

    #[test]
    fn decisions_cover_all_active_jobs_at_requested_size() {
        let mut js = JobState::new();
        let mut a = job(1, 0.0, 10.0);
        a.requested_gpus = 4;
        js.add_new_jobs(vec![a, job(2, 1.0, 10.0)]);
        for d in [
            Fifo::new().schedule(&js, &cluster(), 0.0),
            Las::new().schedule(&js, &cluster(), 0.0),
            Srtf::new().schedule(&js, &cluster(), 0.0),
        ] {
            assert_eq!(d.allocations.len(), 2);
            let one = d.allocations.iter().find(|(j, _)| *j == JobId(1)).unwrap();
            assert_eq!(one.1, 4);
        }
    }
}
