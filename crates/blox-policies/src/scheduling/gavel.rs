//! Gavel: heterogeneity-aware LAS (OSDI '20).
//!
//! Gavel generalizes max-min-fair policies to heterogeneous accelerators
//! by normalizing each job's allocation by its per-GPU-type throughput.
//! The original uses an LP; per DESIGN.md we substitute an iterative
//! water-filling allocator over effective-throughput-normalized attained
//! service, which preserves the ordering behaviour (heterogeneity-aware
//! LAS) without an LP dependency. On a homogeneous cluster it reduces to
//! LAS, which is how the paper's Philly experiments exercise it.

use std::collections::BTreeMap;

use blox_core::cluster::{ClusterState, GpuType};
use blox_core::job::Job;
use blox_core::policy::{SchedulingDecision, SchedulingPolicy};
use blox_core::profile::IterTimeModel;
use blox_core::state::JobState;

/// Heterogeneity-aware LAS scheduling policy.
#[derive(Debug, Clone, Default)]
pub struct Gavel;

impl Gavel {
    /// New Gavel policy.
    pub fn new() -> Self {
        Gavel
    }

    /// Throughput of `job` on a given GPU type relative to running it on
    /// the reference V100 (Gavel's normalized throughput matrix entry).
    pub fn relative_throughput(_job: &Job, gpu: GpuType) -> f64 {
        IterTimeModel::gpu_speed(gpu)
    }

    /// Service normalized by the speed of the GPUs that delivered it: one
    /// second on an A100 counts for more than one second on a K80.
    ///
    /// The metric collector records the job's current placement speed; for
    /// jobs not currently placed we fall back to raw service (they were
    /// last served on the reference type).
    pub fn normalized_service(job: &Job, cluster: &ClusterState) -> f64 {
        let speed = job
            .placement
            .first()
            .and_then(|g| cluster.gpu(*g))
            .map(|row| IterTimeModel::gpu_speed(row.gpu_type))
            .unwrap_or(1.0);
        job.attained_service * speed.max(1e-9)
    }

    /// Water-filling share computation: each job's fair GPU share given
    /// per-type capacities, used to bound how many GPUs a job is granted
    /// when the cluster is contended.
    pub fn fair_share(total_gpus: u32, active_jobs: usize) -> f64 {
        if active_jobs == 0 {
            return total_gpus as f64;
        }
        (total_gpus as f64 / active_jobs as f64).max(1.0)
    }
}

impl SchedulingPolicy for Gavel {
    fn schedule(
        &mut self,
        job_state: &JobState,
        cluster: &ClusterState,
        _now: f64,
    ) -> SchedulingDecision {
        let mut jobs: Vec<&Job> = job_state.active().collect();
        jobs.sort_by(|a, b| {
            Self::normalized_service(a, cluster)
                .partial_cmp(&Self::normalized_service(b, cluster))
                .expect("service is finite")
                .then(a.id.cmp(&b.id))
        });
        // Heterogeneity-aware sizing: under contention a job is granted at
        // most ceil(fair share) GPUs, never more than it asked for.
        let share = Self::fair_share(cluster.total_gpus(), jobs.len()).ceil() as u32;
        let allocations: Vec<_> = jobs
            .iter()
            .map(|j| (j.id, j.requested_gpus.min(share.max(1))))
            .collect();
        SchedulingDecision {
            allocations,
            batch_sizes: BTreeMap::new(),
            terminate: Vec::new(),
        }
    }

    fn name(&self) -> &str {
        "gavel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blox_core::cluster::NodeSpec;
    use blox_core::ids::JobId;
    use blox_core::profile::JobProfile;

    fn v100_cluster(nodes: u32) -> ClusterState {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), nodes);
        c
    }

    fn job(id: u64, gpus: u32, service: f64) -> Job {
        let mut j = Job::new(JobId(id), 0.0, gpus, 1e6, JobProfile::synthetic("toy", 1.0));
        j.attained_service = service;
        j
    }

    #[test]
    fn reduces_to_las_on_homogeneous_cluster() {
        let c = v100_cluster(4);
        let mut js = JobState::new();
        js.add_new_jobs(vec![job(1, 1, 900.0), job(2, 1, 100.0)]);
        let d = Gavel::new().schedule(&js, &c, 0.0);
        assert_eq!(d.allocations[0].0, JobId(2));
    }

    #[test]
    fn service_on_fast_gpus_counts_more() {
        // A job placed on A100s accumulates normalized service faster.
        let mut mixed = ClusterState::new();
        mixed.add_nodes(&NodeSpec::v100_p3_8xlarge(), 1);
        mixed.add_nodes(&NodeSpec::a100_dgx(), 1);
        let mut on_a100 = job(1, 1, 100.0);
        let a100_gpu = mixed
            .gpus()
            .find(|g| g.gpu_type == GpuType::A100)
            .unwrap()
            .id;
        mixed.allocate(JobId(1), &[a100_gpu], 4.0).unwrap();
        on_a100.placement = vec![a100_gpu];
        let on_v100 = job(2, 1, 100.0);
        assert!(
            Gavel::normalized_service(&on_a100, &mixed)
                > Gavel::normalized_service(&on_v100, &mixed)
        );
    }

    #[test]
    fn contention_caps_grants_at_fair_share() {
        let c = v100_cluster(1); // 4 GPUs
        let mut js = JobState::new();
        js.add_new_jobs(vec![
            job(1, 4, 0.0),
            job(2, 4, 0.0),
            job(3, 4, 0.0),
            job(4, 4, 0.0),
        ]);
        let d = Gavel::new().schedule(&js, &c, 0.0);
        // Fair share = 1 GPU each.
        assert!(d.allocations.iter().all(|(_, g)| *g == 1));
    }

    #[test]
    fn uncontended_jobs_get_their_request() {
        let c = v100_cluster(4); // 16 GPUs
        let mut js = JobState::new();
        js.add_new_jobs(vec![job(1, 4, 0.0), job(2, 2, 0.0)]);
        let d = Gavel::new().schedule(&js, &c, 0.0);
        let alloc: BTreeMap<_, _> = d.allocations.into_iter().collect();
        assert_eq!(alloc[&JobId(1)], 4);
        assert_eq!(alloc[&JobId(2)], 2);
    }

    #[test]
    fn fair_share_never_below_one() {
        assert_eq!(Gavel::fair_share(4, 100), 1.0);
        assert_eq!(Gavel::fair_share(64, 0), 64.0);
        assert_eq!(Gavel::fair_share(64, 16), 4.0);
    }
}
