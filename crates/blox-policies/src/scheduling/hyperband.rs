//! HyperBand-style hyper-parameter-tuning scheduler (paper §8, "Beyond ML
//! Training").
//!
//! The paper observes that HyperBand's successive-halving logic is just
//! another scheduling-policy instance: group trial jobs into rungs by
//! attained budget; at each rung boundary keep the best `1/eta` fraction
//! (by reported loss, pushed through the client library) and terminate the
//! rest. This wrapper composes the pruning with any inner ordering policy.

use blox_core::cluster::ClusterState;
use blox_core::job::Job;
use blox_core::policy::{SchedulingDecision, SchedulingPolicy};
use blox_core::state::JobState;

/// Successive-halving pruning wrapped around an inner ordering policy.
pub struct HyperBand<P: SchedulingPolicy> {
    inner: P,
    /// Downsampling factor between rungs (HyperBand's η, typically 3).
    pub eta: f64,
    /// Budget (seconds of service) that closes the first rung; each later
    /// rung multiplies by η.
    pub rung0_budget_s: f64,
    /// Number of rungs before trials run to completion.
    pub rungs: u32,
    name: String,
}

impl<P: SchedulingPolicy> HyperBand<P> {
    /// HyperBand with η = 3 and a one-hour first rung.
    pub fn new(inner: P) -> Self {
        Self::with_params(inner, 3.0, 3600.0, 3)
    }

    /// Fully parameterized constructor.
    pub fn with_params(inner: P, eta: f64, rung0_budget_s: f64, rungs: u32) -> Self {
        let name = format!("hyperband({})", inner.name());
        HyperBand {
            inner,
            eta,
            rung0_budget_s,
            rungs,
            name,
        }
    }

    /// The rung a job currently occupies given its attained service:
    /// rung `k` spans `[budget * eta^(k-1), budget * eta^k)`; rung 0 is
    /// everything below the first boundary.
    pub fn rung_of(&self, attained_service: f64) -> u32 {
        let mut bound = self.rung0_budget_s;
        for k in 0..=self.rungs {
            if attained_service < bound {
                return k;
            }
            bound *= self.eta;
        }
        self.rungs + 1
    }

    /// Decide terminations: within each completed rung cohort, keep the
    /// best `1/eta` fraction by reported loss and cut the rest. Jobs that
    /// have not reported a loss are never cut (no evidence yet).
    fn prune(&self, job_state: &JobState) -> Vec<blox_core::ids::JobId> {
        let mut cut = Vec::new();
        for rung in 1..=self.rungs {
            let cohort: Vec<&Job> = job_state
                .active()
                .filter(|j| self.rung_of(j.attained_service) == rung)
                .filter(|j| j.metric("loss").is_some())
                .collect();
            if cohort.len() < 2 {
                continue;
            }
            let mut by_loss: Vec<&Job> = cohort.clone();
            by_loss.sort_by(|a, b| {
                a.metric("loss")
                    .partial_cmp(&b.metric("loss"))
                    .expect("losses are finite")
            });
            let keep = ((by_loss.len() as f64 / self.eta).ceil() as usize).max(1);
            for job in by_loss.iter().skip(keep) {
                cut.push(job.id);
            }
        }
        cut
    }
}

impl<P: SchedulingPolicy> SchedulingPolicy for HyperBand<P> {
    fn schedule(
        &mut self,
        job_state: &JobState,
        cluster: &ClusterState,
        now: f64,
    ) -> SchedulingDecision {
        let mut decision = self.inner.schedule(job_state, cluster, now);
        decision.terminate.extend(self.prune(job_state));
        decision.terminate.sort_unstable();
        decision.terminate.dedup();
        decision
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduling::Fifo;
    use blox_core::cluster::NodeSpec;
    use blox_core::ids::JobId;
    use blox_core::profile::JobProfile;

    fn cluster() -> ClusterState {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 2);
        c
    }

    fn trial(id: u64, service: f64, loss: Option<f64>) -> Job {
        let mut j = Job::new(JobId(id), 0.0, 1, 1e9, JobProfile::synthetic("t", 0.5));
        j.attained_service = service;
        if let Some(l) = loss {
            j.push_metric("loss", l);
        }
        j
    }

    #[test]
    fn rung_boundaries_scale_by_eta() {
        let hb = HyperBand::with_params(Fifo::new(), 3.0, 100.0, 3);
        assert_eq!(hb.rung_of(0.0), 0);
        assert_eq!(hb.rung_of(99.0), 0);
        assert_eq!(hb.rung_of(100.0), 1);
        assert_eq!(hb.rung_of(299.0), 1);
        assert_eq!(hb.rung_of(300.0), 2);
        assert_eq!(hb.rung_of(900.0), 3);
        assert_eq!(hb.rung_of(1e9), 4);
    }

    #[test]
    fn worst_trials_in_a_rung_are_cut() {
        let mut js = JobState::new();
        // Six trials in rung 1 (service in [100, 300)): keep ceil(6/3)=2.
        js.add_new_jobs((0..6).map(|i| trial(i, 150.0, Some(i as f64))).collect());
        let mut hb = HyperBand::with_params(Fifo::new(), 3.0, 100.0, 3);
        let d = hb.schedule(&js, &cluster(), 0.0);
        assert_eq!(d.terminate.len(), 4);
        // The two lowest losses (jobs 0 and 1) survive.
        assert!(!d.terminate.contains(&JobId(0)));
        assert!(!d.terminate.contains(&JobId(1)));
    }

    #[test]
    fn trials_without_loss_reports_are_spared() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![
            trial(0, 150.0, None),
            trial(1, 150.0, None),
            trial(2, 150.0, None),
        ]);
        let mut hb = HyperBand::with_params(Fifo::new(), 3.0, 100.0, 3);
        let d = hb.schedule(&js, &cluster(), 0.0);
        assert!(d.terminate.is_empty());
    }

    #[test]
    fn rung_zero_is_never_pruned() {
        let mut js = JobState::new();
        js.add_new_jobs((0..5).map(|i| trial(i, 10.0, Some(i as f64))).collect());
        let mut hb = HyperBand::with_params(Fifo::new(), 3.0, 100.0, 3);
        let d = hb.schedule(&js, &cluster(), 0.0);
        assert!(d.terminate.is_empty(), "rung 0 trials still accumulating");
    }

    #[test]
    fn inner_ordering_is_preserved() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![trial(2, 0.0, None), trial(1, 0.0, None)]);
        let mut hb = HyperBand::new(Fifo::new());
        let d = hb.schedule(&js, &cluster(), 0.0);
        assert_eq!(d.allocations[0].0, JobId(1));
        assert_eq!(hb.name(), "hyperband(fifo)");
    }
}
