//! Scheduling policies: who runs next round, with how many GPUs.

mod basic;
mod gavel;
mod hyperband;
mod loss_term;
mod optimus;
mod order_cache;
mod pollux;
mod synergy;
mod themis;
mod tiresias;

pub use basic::{Fifo, Las, Srtf};
pub use gavel::Gavel;
pub use hyperband::HyperBand;
pub use loss_term::LossTermination;
pub use optimus::Optimus;
pub use pollux::Pollux;
pub use synergy::{Synergy, SynergyMode};
pub use themis::Themis;
pub use tiresias::Tiresias;
