//! Synergy: resource-sensitive scheduling (OSDI '22).
//!
//! Synergy observes that DNN jobs differ in how much host CPU and DRAM
//! they need alongside each GPU; allocating those resources *proportional*
//! to GPU share starves CPU-bound jobs, while Synergy-Tune allocates along
//! profiled demands. The scheduling order is resource-sensitive FIFO; the
//! CPU/DRAM awareness lives in the paired
//! [`SynergyPlacement`](crate::placement::SynergyPlacement) policy, which
//! packs jobs so node CPU demand stays within capacity.

use blox_core::cluster::ClusterState;
use blox_core::job::Job;
use blox_core::policy::{SchedulingDecision, SchedulingPolicy};
use blox_core::state::JobState;

/// Which Synergy allocation mode is active (paper Figure 5 compares both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynergyMode {
    /// CPU/DRAM proportional to GPU share (the baseline Synergy compares
    /// against).
    Proportional,
    /// Profile-guided CPU/DRAM allocation (Synergy-Tune).
    Tune,
}

/// Synergy scheduling policy.
#[derive(Debug, Clone)]
pub struct Synergy {
    /// Active allocation mode.
    pub mode: SynergyMode,
}

impl Synergy {
    /// Proportional-mode policy.
    pub fn proportional() -> Self {
        Synergy {
            mode: SynergyMode::Proportional,
        }
    }

    /// Tune-mode policy.
    pub fn tune() -> Self {
        Synergy {
            mode: SynergyMode::Tune,
        }
    }

    /// The CPU cores a job should be co-scheduled with under this mode.
    pub fn cpu_demand(&self, job: &Job, cluster: &ClusterState) -> f64 {
        match self.mode {
            SynergyMode::Proportional => {
                // Cores proportional to GPU share of a node.
                let (cores, gpus) = cluster
                    .nodes()
                    .next()
                    .map(|n| (n.spec.cpu_cores as f64, n.spec.gpus as f64))
                    .unwrap_or((1.0, 1.0));
                job.requested_gpus as f64 * cores / gpus
            }
            SynergyMode::Tune => job.requested_gpus as f64 * job.profile.cpus_per_gpu,
        }
    }
}

impl SchedulingPolicy for Synergy {
    fn schedule(
        &mut self,
        job_state: &JobState,
        _cluster: &ClusterState,
        _now: f64,
    ) -> SchedulingDecision {
        // Resource-sensitive FIFO: arrival order; the resource awareness is
        // enforced at placement.
        let mut jobs: Vec<&Job> = job_state.active().collect();
        jobs.sort_by(|a, b| {
            a.arrival_time
                .partial_cmp(&b.arrival_time)
                .expect("arrival times are finite")
                .then(a.id.cmp(&b.id))
        });
        SchedulingDecision::from_priority_order(jobs)
    }

    fn name(&self) -> &str {
        match self.mode {
            SynergyMode::Proportional => "synergy-proportional",
            SynergyMode::Tune => "synergy-tune",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blox_core::cluster::NodeSpec;
    use blox_core::ids::JobId;
    use blox_core::profile::JobProfile;

    fn cluster() -> ClusterState {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 1); // 32 cores / 4 GPUs
        c
    }

    fn job(id: u64, gpus: u32, cpus_per_gpu: f64) -> Job {
        let mut p = JobProfile::synthetic("toy", 1.0);
        p.cpus_per_gpu = cpus_per_gpu;
        Job::new(JobId(id), id as f64, gpus, 1e5, p)
    }

    #[test]
    fn proportional_cpu_demand_follows_gpu_share() {
        let s = Synergy::proportional();
        let j = job(1, 2, 12.0);
        // 2 GPUs of 4 on a 32-core node: 16 cores, regardless of profile.
        assert_eq!(s.cpu_demand(&j, &cluster()), 16.0);
    }

    #[test]
    fn tune_cpu_demand_follows_profile() {
        let s = Synergy::tune();
        let j = job(1, 2, 12.0);
        assert_eq!(s.cpu_demand(&j, &cluster()), 24.0);
    }

    #[test]
    fn scheduling_order_is_fifo_in_both_modes() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![job(2, 1, 3.0), job(1, 1, 3.0)]);
        for mut s in [Synergy::proportional(), Synergy::tune()] {
            let d = s.schedule(&js, &cluster(), 0.0);
            assert_eq!(d.allocations[0].0, JobId(1));
        }
    }

    #[test]
    fn names_distinguish_modes() {
        assert_eq!(Synergy::proportional().name(), "synergy-proportional");
        assert_eq!(Synergy::tune().name(), "synergy-tune");
    }
}
