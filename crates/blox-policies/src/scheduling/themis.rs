//! Themis: finish-time fairness (NSDI '20).
//!
//! Themis ranks jobs by their finish-time-fairness metric
//! `ρ = T_shared / T_independent`: the ratio between the finish time a job
//! will see under sharing and the finish time it would see running alone
//! on its requested resources. Jobs with the largest ρ (most unfairly
//! treated) receive allocations first. The ρ estimate is refreshed each
//! round from the metric collector's view of progress — this is the extra
//! metric Table 7 says Themis collects.

use blox_core::cluster::ClusterState;
use blox_core::job::Job;
use blox_core::policy::{SchedulingDecision, SchedulingPolicy};
use blox_core::state::JobState;

/// Finish-time-fair scheduling policy.
#[derive(Debug, Clone, Default)]
pub struct Themis;

impl Themis {
    /// New Themis policy.
    pub fn new() -> Self {
        Themis
    }

    /// Finish-time fairness estimate for one job at time `now`.
    ///
    /// `T_independent` is the isolated runtime at the requested size;
    /// `T_shared` is the time already spent plus the remaining work at the
    /// requested size. A job that has been queued without progress has
    /// ρ > 1 growing with its wait.
    pub fn rho(job: &Job, now: f64) -> f64 {
        let t_independent = job.estimated_total_time().max(1e-9);
        let elapsed = (now - job.arrival_time).max(0.0);
        let t_shared = elapsed + job.estimated_remaining_time();
        t_shared / t_independent
    }
}

impl SchedulingPolicy for Themis {
    fn schedule(
        &mut self,
        job_state: &JobState,
        _cluster: &ClusterState,
        now: f64,
    ) -> SchedulingDecision {
        let mut jobs: Vec<&Job> = job_state.active().collect();
        jobs.sort_by(|a, b| {
            Self::rho(b, now)
                .partial_cmp(&Self::rho(a, now))
                .expect("rho is finite")
                .then(a.id.cmp(&b.id))
        });
        let mut decision = SchedulingDecision::from_priority_order(jobs);
        // Publish rho into the metric store contract consumers can read
        // (kept in the decision's job order; the manager owns mutation, so
        // policies expose it via allocations order only).
        decision.batch_sizes.clear();
        decision
    }

    fn name(&self) -> &str {
        "themis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blox_core::cluster::NodeSpec;
    use blox_core::ids::JobId;
    use blox_core::profile::JobProfile;

    fn cluster() -> ClusterState {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 1);
        c
    }

    fn job(id: u64, arrival: f64, iters: f64) -> Job {
        Job::new(
            JobId(id),
            arrival,
            1,
            iters,
            JobProfile::synthetic("toy", 1.0),
        )
    }

    #[test]
    fn fresh_job_has_rho_one() {
        let j = job(1, 100.0, 1000.0);
        let rho = Themis::rho(&j, 100.0);
        assert!((rho - 1.0).abs() < 1e-9, "rho={rho}");
    }

    #[test]
    fn waiting_inflates_rho() {
        let j = job(1, 0.0, 1000.0);
        assert!(Themis::rho(&j, 5000.0) > Themis::rho(&j, 100.0));
    }

    #[test]
    fn progress_deflates_rho() {
        let mut j = job(1, 0.0, 1000.0);
        let stalled = Themis::rho(&j, 500.0);
        j.completed_iters = 500.0;
        let progressed = Themis::rho(&j, 500.0);
        assert!(progressed < stalled);
    }

    #[test]
    fn most_unfair_job_ranks_first() {
        let mut js = JobState::new();
        // Short job queued a long time: very unfair (high rho).
        let short_starved = job(1, 0.0, 100.0);
        // Long job making progress: fair.
        let mut long_served = job(2, 0.0, 1_000_000.0);
        long_served.completed_iters = 500_000.0;
        js.add_new_jobs(vec![long_served, short_starved]);
        let d = Themis::new().schedule(&js, &cluster(), 10_000.0);
        assert_eq!(d.allocations[0].0, JobId(1));
    }
}
