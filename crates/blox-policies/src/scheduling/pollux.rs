//! Pollux: goodput-optimizing co-adaptive scheduling (OSDI '21).
//!
//! Pollux jointly decides each job's GPU count *and* batch size to
//! maximize cluster-wide goodput (throughput × statistical efficiency).
//! Two behaviours from the paper's analysis (§4.2) matter for fidelity:
//!
//! * Pollux **avoids preemptions**: running jobs keep at least one GPU
//!   rather than being suspended; at high load incoming jobs queue.
//! * When the cluster is underloaded, Pollux **expands** jobs (more GPUs,
//!   larger batches) as long as marginal goodput increases; under load it
//!   shrinks jobs toward one GPU each.

use std::collections::BTreeMap;

use blox_core::cluster::ClusterState;
use blox_core::ids::JobId;
use blox_core::job::{Job, JobStatus};
use blox_core::policy::{SchedulingDecision, SchedulingPolicy};
use blox_core::state::JobState;

/// Pollux scheduling policy.
#[derive(Debug, Clone)]
pub struct Pollux {
    /// Absolute per-job GPU cap.
    pub max_gpus_per_job: u32,
    /// Minimum relative goodput gain to justify one more GPU.
    pub expand_threshold: f64,
}

impl Pollux {
    /// Default policy (cap 16 GPUs/job, 5% marginal-gain threshold).
    pub fn new() -> Self {
        Pollux {
            max_gpus_per_job: 16,
            expand_threshold: 0.05,
        }
    }

    /// Goodput of `job` at `n` GPUs with the goodput-optimal batch size,
    /// from its Pollux profile; jobs without a profile fall back to the
    /// iteration-time model's throughput.
    fn goodput(job: &Job, n: u32) -> f64 {
        match &job.profile.pollux {
            Some(p) => p.goodput(n, p.best_batch(n)),
            None => {
                job.profile
                    .iter_model
                    .throughput(n, blox_core::cluster::GpuType::V100, true, 100.0)
            }
        }
    }
}

impl Default for Pollux {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedulingPolicy for Pollux {
    fn schedule(
        &mut self,
        job_state: &JobState,
        cluster: &ClusterState,
        _now: f64,
    ) -> SchedulingDecision {
        let total = cluster.total_gpus();
        // Running jobs first (Pollux avoids preemption), then queued, each
        // in arrival order.
        let mut running: Vec<&Job> = job_state
            .active()
            .filter(|j| j.status == JobStatus::Running)
            .collect();
        running.sort_by_key(|a| a.id);
        let mut waiting: Vec<&Job> = job_state
            .active()
            .filter(|j| j.status != JobStatus::Running)
            .collect();
        waiting.sort_by_key(|a| a.id);

        let mut grants: BTreeMap<JobId, u32> = BTreeMap::new();
        let mut order: Vec<JobId> = Vec::new();
        let mut used = 0u32;
        for job in running.iter().chain(waiting.iter()) {
            if used >= total {
                break;
            }
            grants.insert(job.id, 1);
            order.push(job.id);
            used += 1;
        }

        // Expand while spare capacity exists and marginal goodput is worth
        // it — proportional gain, so small jobs expand first.
        let by_id: BTreeMap<JobId, &Job> = running
            .iter()
            .chain(waiting.iter())
            .map(|j| (j.id, *j))
            .collect();
        while used < total {
            let mut best: Option<(f64, JobId)> = None;
            for id in &order {
                let job = by_id[id];
                let cur = grants[id];
                if cur >= self.max_gpus_per_job {
                    continue;
                }
                let g_cur = Self::goodput(job, cur);
                let g_next = Self::goodput(job, cur + 1);
                if g_cur <= 0.0 {
                    continue;
                }
                let gain = g_next / g_cur - 1.0;
                if gain < self.expand_threshold {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bg, bid)) => gain > bg || (gain == bg && *id < bid),
                };
                if better {
                    best = Some((gain, *id));
                }
            }
            match best {
                Some((_, id)) => {
                    *grants.get_mut(&id).expect("granted above") += 1;
                    used += 1;
                }
                None => break,
            }
        }

        // Batch sizes: goodput-optimal at the granted GPU count.
        let mut batch_sizes = BTreeMap::new();
        for id in &order {
            let job = by_id[id];
            if let Some(p) = &job.profile.pollux {
                batch_sizes.insert(*id, p.best_batch(grants[id]));
            }
        }

        SchedulingDecision {
            allocations: order.into_iter().map(|id| (id, grants[&id])).collect(),
            batch_sizes,
            terminate: Vec::new(),
        }
    }

    fn name(&self) -> &str {
        "pollux"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blox_core::cluster::NodeSpec;
    use blox_core::profile::{JobProfile, PolluxProfile};

    fn cluster(nodes: u32) -> ClusterState {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), nodes);
        c
    }

    fn pollux_job(id: u64, status: JobStatus) -> Job {
        let mut p = JobProfile::synthetic("px", 0.2);
        p.pollux = Some(PolluxProfile {
            t_grad_per_sample: 0.002,
            t_sync: 0.01,
            init_batch: 64,
            max_batch: 2048,
            gns: 600.0,
        });
        let mut j = Job::new(JobId(id), 0.0, 2, 1e6, p);
        j.status = status;
        j
    }

    #[test]
    fn underload_expands_jobs_beyond_one_gpu() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![pollux_job(1, JobStatus::Queued)]);
        let d = Pollux::new().schedule(&js, &cluster(4), 0.0); // 16 GPUs
        assert!(d.allocations[0].1 > 1, "got {}", d.allocations[0].1);
        // A batch size was co-adapted.
        assert!(d.batch_sizes.contains_key(&JobId(1)));
    }

    #[test]
    fn overload_gives_single_gpus_and_queues_the_rest() {
        let mut js = JobState::new();
        js.add_new_jobs((0..10).map(|i| pollux_job(i, JobStatus::Queued)).collect());
        let d = Pollux::new().schedule(&js, &cluster(1), 0.0); // 4 GPUs
        assert_eq!(d.allocations.len(), 4);
        assert!(d.allocations.iter().all(|(_, g)| *g == 1));
    }

    #[test]
    fn running_jobs_keep_priority_over_queued() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![
            pollux_job(5, JobStatus::Queued),
            pollux_job(9, JobStatus::Running),
        ]);
        let d = Pollux::new().schedule(&js, &cluster(1), 0.0);
        // The running job (higher id!) is first in the grant order.
        assert_eq!(d.allocations[0].0, JobId(9));
    }

    #[test]
    fn expansion_respects_cap() {
        let mut js = JobState::new();
        js.add_new_jobs(vec![pollux_job(1, JobStatus::Queued)]);
        let policy = Pollux {
            max_gpus_per_job: 2,
            ..Pollux::new()
        };
        let mut p = policy;
        let d = p.schedule(&js, &cluster(8), 0.0);
        assert!(d.allocations[0].1 <= 2);
    }

    #[test]
    fn batch_size_grows_with_gpu_count() {
        let job = pollux_job(1, JobStatus::Queued);
        let p = job.profile.pollux.as_ref().unwrap();
        assert!(p.best_batch(8) >= p.best_batch(1));
    }
}
