//! Placement policies: mapping scheduled jobs onto concrete GPUs.

use std::collections::BTreeMap;

use blox_core::cluster::ClusterState;
use blox_core::ids::{GpuGlobalId, JobId, NodeId};
use blox_core::job::JobStatus;
use blox_core::place_util::{plan_placement, FreePool, PickStrategy};
use blox_core::policy::{Placement, PlacementPolicy, SchedulingDecision};
use blox_core::state::JobState;

/// Tensor-skew threshold used by the Tiresias placement heuristic; kept in
/// sync with the workload zoo's notion of "high skew".
pub const SKEW_THRESHOLD: f64 = 0.5;

/// First-Free: take the lowest-numbered free GPUs (used by the fidelity
/// experiment, Figure 18).
#[derive(Debug, Default)]
pub struct FirstFreePlacement;

impl FirstFreePlacement {
    /// New first-free placement.
    pub fn new() -> Self {
        FirstFreePlacement
    }
}

impl PlacementPolicy for FirstFreePlacement {
    fn place(
        &mut self,
        decision: &SchedulingDecision,
        job_state: &JobState,
        cluster: &ClusterState,
        _now: f64,
    ) -> Placement {
        plan_placement(decision, job_state, cluster, |_| PickStrategy::FirstFree)
    }

    /// Pure function of its inputs that keeps running jobs whose grant
    /// matches their placement: safe for the event-driven fast path.
    fn stable_between_events(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "first-free"
    }
}

/// Consolidation-maximizing placement: every job lands on as few nodes as
/// possible (the paper's `Consolidated` policy).
#[derive(Debug)]
pub struct ConsolidatedPlacement {
    strict: bool,
}

impl ConsolidatedPlacement {
    /// Jobs that cannot fit one node are spread over the fewest nodes.
    pub fn preferred() -> Self {
        ConsolidatedPlacement { strict: false }
    }

    /// Jobs that cannot be consolidated onto one node skip the round.
    /// Note multi-node-sized jobs (demand > GPUs/node) can never launch
    /// under the strict variant.
    pub fn strict() -> Self {
        ConsolidatedPlacement { strict: true }
    }
}

impl PlacementPolicy for ConsolidatedPlacement {
    fn place(
        &mut self,
        decision: &SchedulingDecision,
        job_state: &JobState,
        cluster: &ClusterState,
        _now: f64,
    ) -> Placement {
        let strict = self.strict;
        plan_placement(decision, job_state, cluster, |_| {
            if strict {
                PickStrategy::ConsolidatedStrict
            } else {
                PickStrategy::ConsolidatedPreferred
            }
        })
    }

    /// Pure function of its inputs that keeps running jobs whose grant
    /// matches their placement: safe for the event-driven fast path.
    fn stable_between_events(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        if self.strict {
            "consolidated-strict"
        } else {
            "consolidated"
        }
    }
}

/// The Tiresias placement heuristic (Tiresias §3.3): consolidate only jobs
/// whose model has high tensor-size skew; place everything else to
/// minimize fragmentation.
#[derive(Debug)]
pub struct TiresiasPlacement {
    /// Skew threshold above which a job is consolidated.
    pub skew_threshold: f64,
}

impl TiresiasPlacement {
    /// Heuristic with the default threshold.
    pub fn new() -> Self {
        TiresiasPlacement {
            skew_threshold: SKEW_THRESHOLD,
        }
    }
}

impl Default for TiresiasPlacement {
    fn default() -> Self {
        Self::new()
    }
}

impl PlacementPolicy for TiresiasPlacement {
    fn place(
        &mut self,
        decision: &SchedulingDecision,
        job_state: &JobState,
        cluster: &ClusterState,
        _now: f64,
    ) -> Placement {
        let threshold = self.skew_threshold;
        plan_placement(decision, job_state, cluster, |id: JobId| {
            let high_skew = job_state
                .get(id)
                .map(|j| j.profile.skew > threshold)
                .unwrap_or(false);
            if high_skew {
                PickStrategy::ConsolidatedPreferred
            } else {
                PickStrategy::Defragment
            }
        })
    }

    /// Pure function of its inputs that keeps running jobs whose grant
    /// matches their placement: safe for the event-driven fast path.
    fn stable_between_events(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "tiresias-placement"
    }
}

/// Tiresias+ (paper Figure 11): identical structure to the Tiresias
/// heuristic but driven by *profiled ground truth* — the per-model
/// `consolidation_benefit` flag — instead of the skew proxy.
#[derive(Debug, Default)]
pub struct ProfileGuidedPlacement;

impl ProfileGuidedPlacement {
    /// New profile-guided placement.
    pub fn new() -> Self {
        ProfileGuidedPlacement
    }
}

impl PlacementPolicy for ProfileGuidedPlacement {
    fn place(
        &mut self,
        decision: &SchedulingDecision,
        job_state: &JobState,
        cluster: &ClusterState,
        _now: f64,
    ) -> Placement {
        plan_placement(decision, job_state, cluster, |id: JobId| {
            let benefits = job_state
                .get(id)
                .map(|j| j.profile.consolidation_benefit)
                .unwrap_or(false);
            if benefits {
                PickStrategy::ConsolidatedPreferred
            } else {
                PickStrategy::Defragment
            }
        })
    }

    /// Pure function of its inputs that keeps running jobs whose grant
    /// matches their placement: safe for the event-driven fast path.
    fn stable_between_events(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "tiresias-plus"
    }
}

/// Bandwidth-aware intra-node placement (paper §5.3, Table 4): multi-GPU
/// single-node jobs are placed on the GPU subset with the highest mean
/// pairwise NVLink bandwidth (e.g. the (0,3) pair on p3.8xlarge).
#[derive(Debug, Default)]
pub struct BandwidthAwarePlacement;

impl BandwidthAwarePlacement {
    /// New bandwidth-aware placement.
    pub fn new() -> Self {
        BandwidthAwarePlacement
    }
}

impl PlacementPolicy for BandwidthAwarePlacement {
    fn place(
        &mut self,
        decision: &SchedulingDecision,
        job_state: &JobState,
        cluster: &ClusterState,
        _now: f64,
    ) -> Placement {
        plan_placement(decision, job_state, cluster, |_| {
            PickStrategy::BandwidthAware
        })
    }

    /// Pure function of its inputs that keeps running jobs whose grant
    /// matches their placement: safe for the event-driven fast path.
    fn stable_between_events(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "bandwidth-aware"
    }
}

/// Synergy-style CPU/DRAM-aware placement.
///
/// In `tune` mode, jobs are placed on the node that keeps CPU demand
/// (profiled cores per GPU, summed over co-located jobs) as far under the
/// node's capacity as possible; in proportional mode it behaves like
/// consolidation, letting CPU-hungry jobs contend — which is exactly the
/// slowdown Figure 5's Proportional curve exhibits.
#[derive(Debug)]
pub struct SynergyPlacement {
    /// True for Synergy-Tune, false for Proportional.
    pub tune: bool,
}

impl SynergyPlacement {
    /// Tune-mode placement.
    pub fn tune() -> Self {
        SynergyPlacement { tune: true }
    }

    /// Proportional-mode placement.
    pub fn proportional() -> Self {
        SynergyPlacement { tune: false }
    }

    /// Current profiled CPU demand per node from running jobs.
    fn node_cpu_load(job_state: &JobState, cluster: &ClusterState) -> BTreeMap<NodeId, f64> {
        let mut load: BTreeMap<NodeId, f64> = BTreeMap::new();
        for job in job_state
            .active()
            .filter(|j| j.status == JobStatus::Running)
        {
            for gpu in &job.placement {
                if let Some(row) = cluster.gpu(*gpu) {
                    *load.entry(row.node).or_default() += job.profile.cpus_per_gpu;
                }
            }
        }
        load
    }
}

impl PlacementPolicy for SynergyPlacement {
    fn place(
        &mut self,
        decision: &SchedulingDecision,
        job_state: &JobState,
        cluster: &ClusterState,
        _now: f64,
    ) -> Placement {
        if !self.tune {
            return plan_placement(decision, job_state, cluster, |_| {
                PickStrategy::ConsolidatedPreferred
            });
        }

        // Tune: greedy CPU-aware node choice. Reimplements the planner's
        // keep/suspend phases, then picks per-job nodes minimizing CPU
        // oversubscription.
        let total = cluster.total_gpus();
        let mut granted: Vec<(JobId, u32)> = Vec::new();
        let mut used = 0u32;
        for (job, want) in &decision.allocations {
            if *want == 0 || job_state.get(*job).is_none() {
                continue;
            }
            if used + *want <= total {
                granted.push((*job, *want));
                used += *want;
            }
        }

        let mut pool = FreePool::new(cluster);
        let mut to_suspend = Vec::new();
        let mut kept: Vec<JobId> = Vec::new();
        for job in job_state
            .active()
            .filter(|j| j.status == JobStatus::Running)
        {
            let keep = granted
                .iter()
                .any(|(id, n)| *id == job.id && *n == job.placement.len() as u32);
            if keep {
                kept.push(job.id);
            } else {
                to_suspend.push(job.id);
                pool.add(&job.placement);
            }
        }

        let mut cpu_load = Self::node_cpu_load(job_state, cluster);
        // Suspended jobs free their CPU demand.
        for id in &to_suspend {
            if let Some(job) = job_state.get(*id) {
                for gpu in &job.placement {
                    if let Some(row) = cluster.gpu(*gpu) {
                        if let Some(l) = cpu_load.get_mut(&row.node) {
                            *l -= job.profile.cpus_per_gpu;
                        }
                    }
                }
            }
        }

        let mut to_launch = Vec::new();
        for (id, n) in granted {
            if kept.contains(&id) {
                continue;
            }
            let Some(job) = job_state.get(id) else {
                continue;
            };
            let demand = job.profile.cpus_per_gpu * n as f64;
            // Synergy's placement constraint: never oversubscribe a node's
            // CPUs when any non-oversubscribed node fits; within that,
            // best-fit packing keeps fragmentation (and therefore spread
            // penalties for later multi-GPU jobs) low. Candidates come
            // from the pool's bucketed index — only nodes with >= n free
            // GPUs are scored, not the whole cluster.
            let mut best: Option<((i64, usize), NodeId)> = None;
            for (free, node_id) in pool.nodes_with_at_least(n) {
                let Some(node) = cluster.node(node_id) else {
                    continue;
                };
                let cores = node.spec.cpu_cores as f64;
                let after = (cpu_load.get(&node_id).copied().unwrap_or(0.0) + demand) / cores;
                let key = (i64::from(after > 1.0), free as usize);
                let better = match &best {
                    None => true,
                    Some((b, bn)) => key < *b || (key == *b && node_id < *bn),
                };
                if better {
                    best = Some((key, node_id));
                }
            }
            let gpus: Option<Vec<GpuGlobalId>> = match best {
                Some((_, node)) => {
                    let free = pool.on_node(node).to_vec();
                    let chosen: Vec<GpuGlobalId> = free.into_iter().take(n as usize).collect();
                    pool.remove(&chosen);
                    Some(chosen)
                }
                None => pool.take_consolidated_or_spread(n),
            };
            if let Some(gpus) = gpus {
                for gpu in &gpus {
                    if let Some(row) = cluster.gpu(*gpu) {
                        *cpu_load.entry(row.node).or_default() += job.profile.cpus_per_gpu;
                    }
                }
                to_launch.push((id, gpus));
            }
        }

        Placement {
            to_launch,
            to_suspend,
        }
    }

    /// Pure function of its inputs that keeps running jobs whose grant
    /// matches their placement: safe for the event-driven fast path.
    fn stable_between_events(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        if self.tune {
            "synergy-tune-placement"
        } else {
            "synergy-proportional-placement"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blox_core::cluster::NodeSpec;
    use blox_core::job::Job;
    use blox_core::profile::JobProfile;

    fn cluster(nodes: u32) -> ClusterState {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), nodes);
        c
    }

    fn job_with(id: u64, gpus: u32, skew: f64, benefit: bool) -> Job {
        let mut p = JobProfile::synthetic("toy", 1.0);
        p.skew = skew;
        p.consolidation_benefit = benefit;
        Job::new(JobId(id), 0.0, gpus, 1e5, p)
    }

    fn decision(jobs: &JobState) -> SchedulingDecision {
        SchedulingDecision {
            allocations: jobs.active().map(|j| (j.id, j.requested_gpus)).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn first_free_takes_lowest_ids() {
        let c = cluster(2);
        let mut js = JobState::new();
        js.add_new_jobs(vec![job_with(1, 3, 0.2, false)]);
        let p = FirstFreePlacement::new().place(&decision(&js), &js, &c, 0.0);
        assert_eq!(
            p.to_launch[0].1,
            vec![GpuGlobalId(0), GpuGlobalId(1), GpuGlobalId(2)]
        );
    }

    #[test]
    fn consolidated_places_on_one_node() {
        let c = cluster(2);
        let mut js = JobState::new();
        js.add_new_jobs(vec![job_with(1, 4, 0.2, false)]);
        let p = ConsolidatedPlacement::preferred().place(&decision(&js), &js, &c, 0.0);
        assert!(c.is_consolidated(&p.to_launch[0].1));
    }

    #[test]
    fn strict_consolidation_skips_oversized_jobs() {
        let c = cluster(2); // 4-GPU nodes
        let mut js = JobState::new();
        js.add_new_jobs(vec![job_with(1, 8, 0.9, true)]);
        let p = ConsolidatedPlacement::strict().place(&decision(&js), &js, &c, 0.0);
        assert!(p.to_launch.is_empty());
        let p2 = ConsolidatedPlacement::preferred().place(&decision(&js), &js, &c, 0.0);
        assert_eq!(p2.to_launch[0].1.len(), 8);
    }

    #[test]
    fn tiresias_consolidates_only_high_skew() {
        let mut c = cluster(3);
        // Fragment the cluster: occupy 2 GPUs on each of nodes 0 and 1.
        let free = c.free_gpus();
        c.allocate(JobId(90), &[free[0], free[1]], 4.0).unwrap();
        c.allocate(JobId(91), &[free[4], free[5]], 4.0).unwrap();
        let mut js = JobState::new();
        js.add_new_jobs(vec![
            job_with(1, 4, 0.9, true),  // high skew: consolidate (node 2)
            job_with(2, 2, 0.1, false), // low skew: defragment (node 0/1)
        ]);
        let p = TiresiasPlacement::new().place(&decision(&js), &js, &c, 0.0);
        let launched: BTreeMap<JobId, Vec<GpuGlobalId>> = p.to_launch.into_iter().collect();
        assert!(c.is_consolidated(&launched[&JobId(1)]));
        let nodes = c.nodes_of(&launched[&JobId(1)]);
        assert_eq!(nodes, vec![NodeId(2)]);
        // The low-skew job fills a fragmented node rather than node 2.
        let frag_nodes = c.nodes_of(&launched[&JobId(2)]);
        assert!(frag_nodes[0] < NodeId(2));
    }

    #[test]
    fn profile_guided_follows_ground_truth_not_skew() {
        let mut c = cluster(3);
        let free = c.free_gpus();
        c.allocate(JobId(90), &[free[0], free[1]], 4.0).unwrap();
        c.allocate(JobId(91), &[free[4], free[5]], 4.0).unwrap();
        let mut js = JobState::new();
        // Low skew but truly benefits: the heuristic would fragment it, the
        // profile-guided policy consolidates it.
        js.add_new_jobs(vec![job_with(1, 4, 0.1, true)]);
        let d = decision(&js);
        let heur = TiresiasPlacement::new().place(&d, &js, &c, 0.0);
        assert!(!c.is_consolidated(&heur.to_launch[0].1));
        let plus = ProfileGuidedPlacement::new().place(&d, &js, &c, 0.0);
        assert!(c.is_consolidated(&plus.to_launch[0].1));
    }

    #[test]
    fn bandwidth_aware_selects_nvlink_pairs() {
        let c = cluster(1);
        let mut js = JobState::new();
        js.add_new_jobs(vec![job_with(1, 2, 0.5, true)]);
        let p = BandwidthAwarePlacement::new().place(&decision(&js), &js, &c, 0.0);
        let bw = c.alloc_intra_bw(&p.to_launch[0].1).unwrap();
        assert_eq!(bw, 100.0);
    }

    #[test]
    fn synergy_tune_avoids_cpu_hot_nodes() {
        let mut c = cluster(2);
        let mut js = JobState::new();
        // A running CPU-hog on node 0.
        let mut hog = job_with(1, 2, 0.2, false);
        hog.profile.cpus_per_gpu = 16.0;
        hog.status = JobStatus::Running;
        let free = c.free_gpus();
        hog.placement = vec![free[0], free[1]];
        c.allocate(JobId(1), &hog.placement, 4.0).unwrap();
        js.add_new_jobs(vec![hog]);
        // A new CPU-hungry job: tune mode places it on node 1.
        let mut newbie = job_with(2, 2, 0.2, false);
        newbie.profile.cpus_per_gpu = 10.0;
        js.add_new_jobs(vec![newbie]);
        let d = SchedulingDecision {
            allocations: vec![(JobId(1), 2), (JobId(2), 2)],
            ..Default::default()
        };
        let p = SynergyPlacement::tune().place(&d, &js, &c, 0.0);
        let launched: BTreeMap<JobId, Vec<GpuGlobalId>> = p.to_launch.into_iter().collect();
        assert_eq!(c.nodes_of(&launched[&JobId(2)]), vec![NodeId(1)]);
        // Proportional mode best-fit packs it onto the hot node 0 instead.
        let p2 = SynergyPlacement::proportional().place(&d, &js, &c, 0.0);
        let launched2: BTreeMap<JobId, Vec<GpuGlobalId>> = p2.to_launch.into_iter().collect();
        assert_eq!(c.nodes_of(&launched2[&JobId(2)]), vec![NodeId(0)]);
    }

    #[test]
    fn synergy_tune_suspends_descheduled_jobs() {
        let mut c = cluster(1);
        let mut js = JobState::new();
        let mut running = job_with(1, 4, 0.2, false);
        running.status = JobStatus::Running;
        running.placement = c.free_gpus();
        c.allocate(JobId(1), &running.placement, 4.0).unwrap();
        js.add_new_jobs(vec![running, job_with(2, 4, 0.2, false)]);
        let d = SchedulingDecision {
            allocations: vec![(JobId(2), 4)],
            ..Default::default()
        };
        let p = SynergyPlacement::tune().place(&d, &js, &c, 0.0);
        assert_eq!(p.to_suspend, vec![JobId(1)]);
        assert_eq!(p.to_launch.len(), 1);
        assert_eq!(p.to_launch[0].0, JobId(2));
    }
}
