//! Job admission policies: the gatekeepers for newly submitted jobs.

use std::collections::VecDeque;

use blox_core::cluster::ClusterState;
use blox_core::job::Job;
use blox_core::policy::AdmissionPolicy;
use blox_core::state::JobState;

/// Admit every job immediately (the paper's default).
#[derive(Debug, Default)]
pub struct AcceptAll;

impl AcceptAll {
    /// New accept-all policy.
    pub fn new() -> Self {
        AcceptAll
    }
}

impl AdmissionPolicy for AcceptAll {
    fn admit(
        &mut self,
        new_jobs: Vec<Job>,
        _job_state: &JobState,
        _cluster: &ClusterState,
        _now: f64,
    ) -> Vec<Job> {
        new_jobs
    }

    fn name(&self) -> &str {
        "accept-all"
    }
}

/// FIFO admission control with a GPU-demand threshold (paper §5.1):
/// once the cumulative GPU request of schedulable jobs crosses
/// `factor × cluster GPUs`, newly arriving jobs wait in an internal FIFO
/// queue and are released as resources free up.
#[derive(Debug)]
pub struct ThresholdAdmission {
    /// Admission cap as a multiple of cluster GPU capacity (the paper
    /// sweeps 1.0×, 1.2×, 1.5×).
    pub factor: f64,
    queue: VecDeque<Job>,
    name: String,
}

impl ThresholdAdmission {
    /// New threshold admission policy with the given capacity factor.
    pub fn new(factor: f64) -> Self {
        ThresholdAdmission {
            factor,
            queue: VecDeque::new(),
            name: format!("accept-{factor:.1}x"),
        }
    }
}

impl AdmissionPolicy for ThresholdAdmission {
    fn admit(
        &mut self,
        new_jobs: Vec<Job>,
        job_state: &JobState,
        cluster: &ClusterState,
        _now: f64,
    ) -> Vec<Job> {
        self.queue.extend(new_jobs);
        let cap = self.factor * cluster.total_gpus() as f64;
        let mut admitted_gpus = job_state.total_requested_gpus() as f64;
        let mut out = Vec::new();
        while let Some(front) = self.queue.front() {
            let want = front.requested_gpus as f64;
            if admitted_gpus + want <= cap {
                admitted_gpus += want;
                out.push(self.queue.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
        out
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn drain(&mut self) -> Vec<Job> {
        self.queue.drain(..).collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Cap the number of concurrently schedulable jobs (a simple quota, one of
/// the "possible instances" in paper Table 5).
#[derive(Debug)]
pub struct QuotaAdmission {
    /// Maximum active jobs.
    pub max_active_jobs: usize,
    queue: VecDeque<Job>,
}

impl QuotaAdmission {
    /// New quota admission policy.
    pub fn new(max_active_jobs: usize) -> Self {
        QuotaAdmission {
            max_active_jobs,
            queue: VecDeque::new(),
        }
    }
}

impl AdmissionPolicy for QuotaAdmission {
    fn admit(
        &mut self,
        new_jobs: Vec<Job>,
        job_state: &JobState,
        _cluster: &ClusterState,
        _now: f64,
    ) -> Vec<Job> {
        self.queue.extend(new_jobs);
        let mut slots = self
            .max_active_jobs
            .saturating_sub(job_state.active_count());
        let mut out = Vec::new();
        while slots > 0 {
            match self.queue.pop_front() {
                Some(job) => {
                    out.push(job);
                    slots -= 1;
                }
                None => break,
            }
        }
        out
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn drain(&mut self) -> Vec<Job> {
        self.queue.drain(..).collect()
    }

    fn name(&self) -> &str {
        "quota"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blox_core::cluster::NodeSpec;
    use blox_core::ids::JobId;
    use blox_core::profile::JobProfile;

    fn cluster() -> ClusterState {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 2); // 8 GPUs
        c
    }

    fn job(id: u64, gpus: u32) -> Job {
        Job::new(
            JobId(id),
            0.0,
            gpus,
            100.0,
            JobProfile::synthetic("toy", 0.1),
        )
    }

    #[test]
    fn accept_all_passes_everything() {
        let c = cluster();
        let js = JobState::new();
        let mut p = AcceptAll::new();
        let out = p.admit(vec![job(1, 4), job(2, 8)], &js, &c, 0.0);
        assert_eq!(out.len(), 2);
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn threshold_holds_jobs_beyond_cap() {
        let c = cluster(); // 8 GPUs; 1.5x cap = 12.
        let js = JobState::new();
        let mut p = ThresholdAdmission::new(1.5);
        let out = p.admit(vec![job(1, 8), job(2, 4), job(3, 1)], &js, &c, 0.0);
        // 8 + 4 = 12 <= 12 admitted; job 3 would make 13 > 12.
        assert_eq!(out.len(), 2);
        assert_eq!(p.pending(), 1);
        assert_eq!(p.name(), "accept-1.5x");
    }

    #[test]
    fn threshold_releases_fifo_as_capacity_frees() {
        let c = cluster();
        let mut js = JobState::new();
        let mut p = ThresholdAdmission::new(1.0); // cap 8
        js.add_new_jobs(p.admit(vec![job(1, 8)], &js.clone(), &c, 0.0));
        let out = p.admit(vec![job(2, 4)], &js, &c, 0.0);
        assert!(out.is_empty());
        assert_eq!(p.pending(), 1);
        // Job 1 finishes: active set empties, the queued job releases.
        let empty = JobState::new();
        let out = p.admit(vec![], &empty, &c, 300.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, JobId(2));
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn threshold_preserves_fifo_order() {
        let c = cluster();
        let js = JobState::new();
        let mut p = ThresholdAdmission::new(1.0); // cap 8
        let out = p.admit(vec![job(1, 8), job(2, 8), job(3, 1)], &js, &c, 0.0);
        // Job 2 blocks; job 3 must NOT jump the queue.
        assert_eq!(out.len(), 1);
        assert_eq!(p.pending(), 2);
    }

    #[test]
    fn quota_limits_active_jobs() {
        let c = cluster();
        let js = JobState::new();
        let mut p = QuotaAdmission::new(2);
        let out = p.admit(vec![job(1, 1), job(2, 1), job(3, 1)], &js, &c, 0.0);
        assert_eq!(out.len(), 2);
        assert_eq!(p.pending(), 1);
    }
}
