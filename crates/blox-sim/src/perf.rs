//! The simulator's performance model.
//!
//! Maps a job's current placement onto a progress rate in iterations per
//! second. Three effects compose:
//!
//! 1. **Scaling & placement**: the job profile's [`IterTimeModel`] gives
//!    the per-iteration time from GPU count, GPU type, whether the
//!    placement is consolidated, and the interconnect bandwidth between
//!    the spanned nodes.
//! 2. **CPU contention** (Synergy's motivation): when the jobs co-located
//!    on a node together want more CPU cores than the node has, each job
//!    is slowed proportionally to its `cpu_sensitivity`.
//! 3. **Pollux goodput**: jobs with a Pollux profile progress in
//!    *effective* iterations — throughput × statistical efficiency at the
//!    current batch size, normalized to the initial batch.
//!
//! [`IterTimeModel`]: blox_core::profile::IterTimeModel

use std::collections::BTreeMap;

use blox_core::cluster::{ClusterState, GpuType};
use blox_core::ids::{GpuGlobalId, JobId, NodeId};
use blox_core::job::Job;
use blox_core::profile::IterTimeModel;
use blox_core::state::JobState;

/// Performance-model configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfModel {
    /// Enable the CPU-contention slowdown term.
    pub model_cpu_contention: bool,
    /// Multiplier on the Pollux synchronization cost when the placement
    /// spans nodes.
    pub pollux_spread_sync_factor: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            model_cpu_contention: true,
            pollux_spread_sync_factor: 2.0,
        }
    }
}

impl PerfModel {
    /// Per-node CPU oversubscription ratio: ideal cores wanted by all jobs
    /// on the node divided by available cores, clamped to >= 1.
    ///
    /// Nodes that are missing from the cluster or currently failed are
    /// skipped entirely: a dead node's CPUs left the pool with its GPUs,
    /// so it must not contribute contention to the jobs that (transiently,
    /// until the requeue sweep runs) still list placements there.
    pub fn cpu_pressure(&self, jobs: &JobState, cluster: &ClusterState) -> BTreeMap<NodeId, f64> {
        let mut wanted: BTreeMap<NodeId, f64> = BTreeMap::new();
        for job in jobs.running() {
            for node in cluster.nodes_of(&job.placement) {
                if !cluster.node(node).is_some_and(|n| n.alive) {
                    continue;
                }
                let gpus_here = job
                    .placement
                    .iter()
                    .filter(|g| cluster.gpu(**g).map(|r| r.node) == Some(node))
                    .count() as f64;
                *wanted.entry(node).or_default() += gpus_here * job.profile.cpus_per_gpu;
            }
        }
        wanted
            .into_iter()
            .map(|(node, want)| {
                let cores = cluster
                    .node(node)
                    .expect("pressure entries only accumulate on live nodes")
                    .spec
                    .cpu_cores as f64;
                (node, (want / cores).max(1.0))
            })
            .collect()
    }

    /// The GPU type the iteration-time model should price for a placement:
    /// the *slowest* type present. A data-parallel group synchronizes every
    /// iteration, so it advances at the pace of its slowest member — a
    /// V100+P100 placement runs at P100 speed, not V100.
    ///
    /// Debug builds assert that every placement GPU resolves to a cluster
    /// record; in release a missing record is skipped (and an all-missing
    /// placement falls back to the V100 reference).
    pub fn placement_gpu_type(cluster: &ClusterState, placement: &[GpuGlobalId]) -> GpuType {
        let mut worst: Option<GpuType> = None;
        for g in placement {
            let Some(row) = cluster.gpu(*g) else {
                debug_assert!(false, "placement references unknown GPU {g:?}");
                continue;
            };
            worst = Some(match worst {
                Some(w)
                    if IterTimeModel::gpu_speed(w) <= IterTimeModel::gpu_speed(row.gpu_type) =>
                {
                    w
                }
                _ => row.gpu_type,
            });
        }
        worst.unwrap_or(GpuType::V100)
    }

    /// Base (contention-free) progress rate of `job` given its placement
    /// facts. Pure in its arguments — this is the function
    /// [`crate::rate_cache::RateCache`] memoizes by
    /// (profile, GPU type, n, consolidated, inter-bandwidth, batch size).
    pub fn base_rate(
        &self,
        job: &Job,
        n: u32,
        gpu_type: GpuType,
        consolidated: bool,
        inter_bw: f64,
    ) -> f64 {
        match &job.profile.pollux {
            Some(p) => {
                // Effective iterations: goodput normalized by the initial
                // batch so `total_iters` keeps its trace meaning.
                let mut sync_scale = 1.0;
                if !consolidated {
                    sync_scale = self.pollux_spread_sync_factor;
                }
                let m = job.batch_size.max(1);
                let nn = n.max(1) as f64;
                let iter =
                    p.t_grad_per_sample * m as f64 / nn + p.t_sync * sync_scale * (nn.log2() + 1.0);
                let throughput = m as f64 / iter;
                let goodput = throughput * p.efficiency(m);
                goodput / p.init_batch.max(1) as f64
            }
            None => job
                .profile
                .iter_model
                .throughput(n, gpu_type, consolidated, inter_bw),
        }
    }

    /// Apply the CPU-contention slowdown to a base rate, given the nodes
    /// the job spans and a per-node pressure map (from
    /// [`PerfModel::cpu_pressure`] or the cache's incremental equivalent).
    pub fn contended_rate(
        &self,
        base_rate: f64,
        job: &Job,
        nodes: &[NodeId],
        pressure: &BTreeMap<NodeId, f64>,
    ) -> f64 {
        if !self.model_cpu_contention {
            return base_rate;
        }
        let worst = nodes
            .iter()
            .filter_map(|node| pressure.get(node))
            .fold(1.0f64, |acc, p| acc.max(*p));
        if worst <= 1.0 {
            base_rate
        } else {
            // Share deficit scaled by the model's CPU sensitivity.
            let deficit = 1.0 - 1.0 / worst;
            base_rate / (1.0 + job.profile.cpu_sensitivity * deficit)
        }
    }

    /// Progress rate of one job against an already-computed pressure map.
    pub fn rate_with_pressure(
        &self,
        job: &Job,
        cluster: &ClusterState,
        pressure: &BTreeMap<NodeId, f64>,
    ) -> f64 {
        if job.placement.is_empty() {
            return 0.0;
        }
        let n = job.placement.len() as u32;
        let consolidated = cluster.is_consolidated(&job.placement);
        let inter_bw = cluster.alloc_inter_bw(&job.placement);
        let gpu_type = Self::placement_gpu_type(cluster, &job.placement);
        let base_rate = self.base_rate(job, n, gpu_type, consolidated, inter_bw);
        self.contended_rate(base_rate, job, &cluster.nodes_of(&job.placement), pressure)
    }

    /// Progress rate of `job` in iterations/second under its current
    /// placement, including all contention effects. Returns 0 for jobs
    /// without GPUs.
    ///
    /// This recomputes the whole-cluster pressure map on every call; when
    /// rating more than one job, use [`PerfModel::progress_rates`], which
    /// computes it once.
    pub fn progress_rate(&self, job: &Job, jobs: &JobState, cluster: &ClusterState) -> f64 {
        if job.placement.is_empty() {
            return 0.0;
        }
        let pressure = if self.model_cpu_contention {
            self.cpu_pressure(jobs, cluster)
        } else {
            BTreeMap::new()
        };
        self.rate_with_pressure(job, cluster, &pressure)
    }

    /// Progress rates of every running job, with the per-node CPU-pressure
    /// map computed **once** for the batch (not once per job — querying
    /// per job is what made the Collect stage O(jobs²)).
    ///
    /// This is the from-scratch reference the incremental
    /// [`crate::rate_cache::RateCache`] is checked against: its results
    /// are bit-identical to calling [`PerfModel::progress_rate`] per job.
    pub fn progress_rates(&self, jobs: &JobState, cluster: &ClusterState) -> BTreeMap<JobId, f64> {
        let pressure = if self.model_cpu_contention {
            self.cpu_pressure(jobs, cluster)
        } else {
            BTreeMap::new()
        };
        jobs.running()
            .map(|j| (j.id, self.rate_with_pressure(j, cluster, &pressure)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blox_core::cluster::NodeSpec;
    use blox_core::job::JobStatus;
    use blox_core::profile::JobProfile;

    fn cluster(nodes: u32) -> ClusterState {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), nodes);
        c
    }

    fn running_job(id: u64, gpus: u32, profile: JobProfile) -> Job {
        let mut j = Job::new(JobId(id), 0.0, gpus, 1e9, profile);
        j.status = JobStatus::Running;
        j
    }

    #[test]
    fn idle_job_has_zero_rate() {
        let c = cluster(1);
        let js = JobState::new();
        let j = Job::new(JobId(1), 0.0, 1, 10.0, JobProfile::synthetic("t", 0.1));
        assert_eq!(PerfModel::default().progress_rate(&j, &js, &c), 0.0);
    }

    #[test]
    fn consolidated_beats_spread_for_sensitive_models() {
        let mut c = cluster(2);
        let mut profile = JobProfile::synthetic("t", 0.2);
        profile.iter_model.spread_penalty = 0.4;
        let free = c.free_gpus();

        let mut cons = running_job(1, 4, profile.clone());
        cons.placement = free[..4].to_vec();
        c.allocate(JobId(1), &cons.placement, 4.0).unwrap();
        let mut js = JobState::new();
        js.add_new_jobs(vec![cons.clone()]);
        let rate_cons = PerfModel::default().progress_rate(&cons, &js, &c);

        let mut c2 = cluster(2);
        let free2 = c2.free_gpus();
        let mut spread = running_job(1, 4, profile);
        spread.placement = vec![free2[0], free2[1], free2[4], free2[5]];
        c2.allocate(JobId(1), &spread.placement, 4.0).unwrap();
        let mut js2 = JobState::new();
        js2.add_new_jobs(vec![spread.clone()]);
        let rate_spread = PerfModel::default().progress_rate(&spread, &js2, &c2);

        assert!(
            rate_cons > rate_spread * 1.2,
            "{rate_cons} vs {rate_spread}"
        );
    }

    #[test]
    fn cpu_contention_slows_sensitive_jobs() {
        let mut c = cluster(1);
        // Node has 32 cores; two jobs wanting 8 cores/GPU on 4 GPUs
        // oversubscribe it 2x.
        let mut profile = JobProfile::synthetic("cpu-hungry", 0.2);
        profile.cpus_per_gpu = 16.0;
        profile.cpu_sensitivity = 0.5;
        let free = c.free_gpus();

        let mut a = running_job(1, 2, profile.clone());
        a.placement = free[..2].to_vec();
        c.allocate(JobId(1), &a.placement, 4.0).unwrap();
        let mut b = running_job(2, 2, profile.clone());
        b.placement = free[2..4].to_vec();
        c.allocate(JobId(2), &b.placement, 4.0).unwrap();

        let mut js = JobState::new();
        js.add_new_jobs(vec![a.clone(), b]);
        let contended = PerfModel::default().progress_rate(&a, &js, &c);

        // Same job alone on the node.
        let mut c2 = cluster(1);
        let free2 = c2.free_gpus();
        let mut solo = running_job(1, 2, profile);
        solo.placement = free2[..2].to_vec();
        c2.allocate(JobId(1), &solo.placement, 4.0).unwrap();
        let mut js2 = JobState::new();
        js2.add_new_jobs(vec![solo.clone()]);
        let alone = PerfModel::default().progress_rate(&solo, &js2, &c2);

        assert!(contended < alone, "{contended} vs {alone}");
        // Disabling the term removes the penalty.
        let off = PerfModel {
            model_cpu_contention: false,
            ..Default::default()
        };
        assert_eq!(off.progress_rate(&a, &js, &c), alone);
    }

    #[test]
    fn pollux_rate_improves_with_more_gpus() {
        let mut c = cluster(2);
        let zoo_profile = {
            let mut p = JobProfile::synthetic("px", 0.2);
            p.pollux = Some(blox_core::profile::PolluxProfile {
                t_grad_per_sample: 0.002,
                t_sync: 0.02,
                init_batch: 64,
                max_batch: 1024,
                gns: 500.0,
            });
            p
        };
        let free = c.free_gpus();
        let mut one = running_job(1, 1, zoo_profile.clone());
        one.placement = free[..1].to_vec();
        c.allocate(JobId(1), &one.placement, 4.0).unwrap();
        let mut js = JobState::new();
        js.add_new_jobs(vec![one.clone()]);
        let r1 = PerfModel::default().progress_rate(&one, &js, &c);

        let mut c2 = cluster(2);
        let free2 = c2.free_gpus();
        let mut four = running_job(1, 4, zoo_profile);
        four.placement = free2[..4].to_vec();
        c2.allocate(JobId(1), &four.placement, 4.0).unwrap();
        let mut js2 = JobState::new();
        js2.add_new_jobs(vec![four.clone()]);
        let r4 = PerfModel::default().progress_rate(&four, &js2, &c2);
        assert!(r4 > r1 * 1.5, "r1={r1} r4={r4}");
    }

    #[test]
    fn pollux_larger_batch_raises_throughput_but_caps_goodput() {
        let mut c = cluster(1);
        let mut p = JobProfile::synthetic("px", 0.2);
        p.pollux = Some(blox_core::profile::PolluxProfile {
            t_grad_per_sample: 0.002,
            t_sync: 0.02,
            init_batch: 64,
            max_batch: 4096,
            gns: 200.0,
        });
        let free = c.free_gpus();
        let mut j = running_job(1, 2, p);
        j.placement = free[..2].to_vec();
        c.allocate(JobId(1), &j.placement, 4.0).unwrap();
        let mut js = JobState::new();
        js.add_new_jobs(vec![j.clone()]);
        let model = PerfModel::default();
        let r_small = model.progress_rate(&j, &js, &c);
        let mut big = j.clone();
        big.batch_size = 4096;
        // Very large batches lose statistical efficiency: effective rate
        // must not scale with raw throughput.
        let r_big = model.progress_rate(&big, &js, &c);
        assert!(r_big < r_small * 4.0);
    }

    #[test]
    fn mixed_gpu_placement_runs_at_the_slowest_type() {
        // One V100 node + one P100 node; a job straddling both must be
        // priced at P100 speed (the data-parallel group synchronizes every
        // iteration), regardless of which type the placement lists first.
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 1);
        c.add_nodes(&NodeSpec::p100_tiresias(), 1);
        let free = c.free_gpus();
        let (v100, p100) = (free[0], free[4]);
        assert_eq!(c.gpu(v100).unwrap().gpu_type, GpuType::V100);
        assert_eq!(c.gpu(p100).unwrap().gpu_type, GpuType::P100);

        let model = PerfModel {
            model_cpu_contention: false,
            ..Default::default()
        };
        let rate = |placement: Vec<_>| {
            let mut j = running_job(1, 2, JobProfile::synthetic("t", 0.2));
            j.placement = placement;
            let mut c2 = c.clone();
            c2.allocate(JobId(1), &j.placement, 4.0).unwrap();
            let mut js = JobState::new();
            js.add_new_jobs(vec![j.clone()]);
            model.progress_rate(&j, &js, &c2)
        };
        let v_first = rate(vec![v100, p100]);
        let p_first = rate(vec![p100, v100]);
        assert_eq!(v_first, p_first, "GPU-type choice must not depend on order");

        // And the chosen type is the bottleneck: the mixed rate matches an
        // all-P100 spread placement of the same shape, not an all-V100 one.
        assert_eq!(
            PerfModel::placement_gpu_type(&c, &[v100, p100]),
            GpuType::P100
        );
        let profile = JobProfile::synthetic("t", 0.2);
        let expected = model.base_rate(
            &running_job(1, 2, profile),
            2,
            GpuType::P100,
            false,
            c.alloc_inter_bw(&[v100, p100]),
        );
        assert_eq!(v_first, expected);
    }

    #[test]
    fn failed_node_stops_contributing_cpu_pressure() {
        // Two CPU-hungry jobs oversubscribe node 0; node 1 holds a third
        // job. Failing node 0 must drop its pressure entry entirely —
        // before the requeue sweep runs, the jobs still listing placements
        // there must not keep a phantom contention penalty (the old code
        // also priced missing nodes at 1.0 cores, inflating pressure).
        let mut c = cluster(2);
        let mut profile = JobProfile::synthetic("cpu-hungry", 0.2);
        profile.cpus_per_gpu = 16.0;
        profile.cpu_sensitivity = 0.5;
        let free = c.free_gpus();

        let mut a = running_job(1, 2, profile.clone());
        a.placement = free[..2].to_vec();
        c.allocate(JobId(1), &a.placement, 4.0).unwrap();
        let mut b = running_job(2, 2, profile.clone());
        b.placement = free[2..4].to_vec();
        c.allocate(JobId(2), &b.placement, 4.0).unwrap();
        let mut d = running_job(3, 2, profile.clone());
        d.placement = free[4..6].to_vec();
        c.allocate(JobId(3), &d.placement, 4.0).unwrap();

        let mut js = JobState::new();
        js.add_new_jobs(vec![a.clone(), b, d.clone()]);
        let model = PerfModel::default();
        let contended = model.progress_rate(&a, &js, &c);
        let alone = model.base_rate(&a, 2, GpuType::V100, true, f64::INFINITY);
        assert!(contended < alone, "{contended} vs {alone}");

        c.fail_node(NodeId(0)).unwrap();
        // The dead node carries no pressure entry at all...
        assert!(!model.cpu_pressure(&js, &c).contains_key(&NodeId(0)));
        // ...so job 1's churn-round rate (placement still set, requeue
        // pending) reverts to its uncontended value, and the survivor on
        // node 1 keeps its own (uncontended) rate.
        assert_eq!(model.progress_rate(&a, &js, &c), alone);
        assert_eq!(model.progress_rate(&d, &js, &c), alone);
    }

    #[test]
    fn batch_rates_match_per_job_rates_bitwise() {
        let mut c = cluster(2);
        let mut profile = JobProfile::synthetic("t", 0.3);
        profile.cpus_per_gpu = 12.0;
        let free = c.free_gpus();
        let mut a = running_job(1, 4, profile.clone());
        a.placement = free[..4].to_vec();
        c.allocate(JobId(1), &a.placement, 4.0).unwrap();
        let mut b = running_job(2, 2, profile);
        b.placement = vec![free[4], free[5]];
        c.allocate(JobId(2), &b.placement, 4.0).unwrap();
        let mut js = JobState::new();
        js.add_new_jobs(vec![a.clone(), b.clone()]);

        let model = PerfModel::default();
        let batch = model.progress_rates(&js, &c);
        assert_eq!(batch.len(), 2);
        for job in [&a, &b] {
            assert_eq!(
                batch[&job.id].to_bits(),
                model.progress_rate(job, &js, &c).to_bits()
            );
        }
    }
}
