//! Incremental, memoized progress-rate cache for the simulation backend.
//!
//! PR 5's stage telemetry showed the Collect stage dominating the round
//! at scale: the perf model re-derived every running job's rate every
//! round, and each derivation rebuilt the whole-cluster CPU-pressure map
//! — O(jobs²). The [`RateCache`] turns that into delta-driven incremental
//! maintenance (the MetaSys cross-layer-metadata argument applied to the
//! perf model, exactly as the PR 5 state indexes applied it to the shared
//! state):
//!
//! * **Base-throughput memo** — the contention-free rate is a pure
//!   function of `(profile parameters, GPU type, n, consolidated,
//!   inter-bandwidth, batch size)`; it is computed once per distinct key
//!   and reused across jobs and rounds.
//! * **Incremental pressure** — per-node CPU demand is kept in a reverse
//!   index (`node → job → cores wanted`), so a round that changes `k`
//!   placements re-derives pressure on the touched nodes only, summing
//!   contributions in job-id order (the exact accumulation order of the
//!   from-scratch map, so the result is bit-identical).
//! * **Delta-driven invalidation** — the backend forwards the round's
//!   [`blox_core::delta::StateDelta`] (launches, suspensions,
//!   terminations, Pollux batch retunes) and cluster churn into
//!   [`RateCache::invalidate_job`] / [`RateCache::invalidate_node`];
//!   unchanged jobs reuse last round's rate without recomputation.
//! * **Validation sweep** — [`RateCache::update`] additionally runs an
//!   O(running jobs) sweep comparing each entry's stored placement and
//!   batch size against the live job, so direct state mutations that
//!   bypass the delta stream (standalone backend use, tests) still
//!   invalidate correctly. The sweep is the correctness net; the delta
//!   stream is what keeps it cheap.
//! * **Parallel residual recompute** — when a round leaves a large
//!   recompute set (cold start, mass preemption), the per-job rate math
//!   fans out across scoped threads exactly like [`crate::sweep`] does:
//!   workers claim chunks off an atomic counter, results land in
//!   id-ordered slots, and the merge applies them in id order — so the
//!   cache contents are byte-identical no matter how many threads ran.
//!
//! # Exactness contract
//!
//! After `update`, [`RateCache::rates`] equals
//! [`PerfModel::progress_rates`] *bitwise* for every running job — the
//! cache is pure acceleration, pinned by the property suite
//! (`cached_rates_match_scratch_recompute` in `tests/properties.rs`).
//! Two rules make that hold:
//!
//! 1. Node-liveness changes must be reported via `invalidate_node` (the
//!    backend's churn hook does); a failed or revived node changes which
//!    placements contribute pressure without changing any placement.
//! 2. Entries whose placement straddled a dead node at build time are
//!    marked *degraded* and rebuilt every round until the placement is
//!    cleaned up — their inputs can change with liveness the index
//!    cannot observe. Manager-driven runs requeue such jobs before rates
//!    are read, so degraded entries never survive a round in practice.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use blox_core::cluster::{ClusterState, GpuType};
use blox_core::ids::{GpuGlobalId, JobId, NodeId};
use blox_core::job::Job;
use blox_core::state::JobState;

use crate::perf::PerfModel;

/// Memo key of the base (contention-free) throughput: every input of
/// [`PerfModel::base_rate`], with floats keyed by their exact bit
/// patterns so a memo hit returns the identical `f64` a fresh
/// computation would.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum BaseKey {
    /// Non-Pollux jobs: the [`blox_core::profile::IterTimeModel`] path.
    Iter {
        /// `(base_iter_s, serial_frac, comm_frac, spread_penalty)` bits.
        model: [u64; 4],
        gpu: GpuType,
        n: u32,
        consolidated: bool,
        /// Interconnect bandwidth bits (the exact value, not a lossy
        /// bucket: placements share few distinct bandwidths, and an
        /// approximate bucket would break bit-exactness).
        inter_bw: u64,
    },
    /// Pollux jobs: goodput at the current batch size.
    Pollux {
        /// `(t_grad_per_sample, t_sync, gns)` bits.
        params: [u64; 3],
        init_batch: u64,
        batch: u64,
        n: u32,
        consolidated: bool,
        /// [`PerfModel::pollux_spread_sync_factor`] bits.
        spread_sync: u64,
    },
}

/// Everything cached for one running job.
#[derive(Debug, Clone)]
struct Entry {
    /// The placement the entry was built from (the sweep's change check).
    placement: Vec<GpuGlobalId>,
    /// The batch size the entry was built from (Pollux retune check).
    batch: u64,
    /// Distinct nodes the placement spans (sorted; includes nodes that
    /// were dead at build time) — the contention-fold domain.
    nodes: Vec<NodeId>,
    /// Memo key of the base rate.
    key: BaseKey,
    /// Placement facts feeding [`PerfModel::base_rate`] on a memo miss.
    n: u32,
    gpu: GpuType,
    consolidated: bool,
    inter_bw: f64,
    /// True when a placement GPU was unresolvable or sat on a dead node
    /// at build time; such entries are rebuilt every round (see the
    /// module docs' exactness contract).
    degraded: bool,
}

/// Incremental progress-rate cache owned by [`crate::SimBackend`]. See
/// the [module docs](self) for the design and exactness contract.
#[derive(Debug, Clone)]
pub struct RateCache {
    /// Worker threads for the residual recompute: `0` = one per
    /// available CPU, `1` = serial.
    threads: usize,
    /// Minimum recompute-set size before fanning out across threads.
    par_threshold: usize,
    /// Base-throughput memo.
    base: HashMap<BaseKey, f64>,
    /// Per-running-job cache entries.
    entries: BTreeMap<JobId, Entry>,
    /// Reverse index: node → (job → CPU cores wanted there). Only
    /// live-node contributions; the incremental `cpu_pressure`.
    node_want: BTreeMap<NodeId, BTreeMap<JobId, f64>>,
    /// Current per-node pressure, bit-identical to
    /// [`PerfModel::cpu_pressure`] over the same state.
    pressure: BTreeMap<NodeId, f64>,
    /// Current per-job rates, bit-identical to
    /// [`PerfModel::progress_rates`] over the same state.
    rates: BTreeMap<JobId, f64>,
    /// Jobs named by deltas/hooks since the last update.
    stale_jobs: BTreeSet<JobId>,
    /// Nodes named by churn since the last update.
    stale_nodes: BTreeSet<NodeId>,
}

impl Default for RateCache {
    fn default() -> Self {
        RateCache::new()
    }
}

impl RateCache {
    /// An empty cache with automatic thread count and the default
    /// parallel threshold.
    pub fn new() -> Self {
        RateCache {
            threads: 0,
            par_threshold: 4096,
            base: HashMap::new(),
            entries: BTreeMap::new(),
            node_want: BTreeMap::new(),
            pressure: BTreeMap::new(),
            rates: BTreeMap::new(),
            stale_jobs: BTreeSet::new(),
            stale_nodes: BTreeSet::new(),
        }
    }

    /// Set the worker-thread count for the residual recompute
    /// (`0` = one per available CPU, `1` = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the recompute-set size at which the residual recompute fans
    /// out across threads (tests lower this to exercise the parallel
    /// path on small states).
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.par_threshold = threshold.max(1);
        self
    }

    /// Mark one job's cached rate stale (placement, status, or batch-size
    /// change). The entry is rebuilt at the next [`RateCache::update`].
    pub fn invalidate_job(&mut self, id: JobId) {
        self.stale_jobs.insert(id);
    }

    /// Mark one node's liveness as changed (failure or revival): every
    /// job contributing pressure there is rebuilt at the next update.
    /// **Required** for exactness — see the module docs.
    pub fn invalidate_node(&mut self, node: NodeId) {
        self.stale_nodes.insert(node);
    }

    /// Drop everything (state restore / wholesale reconfiguration).
    pub fn clear(&mut self) {
        self.base.clear();
        self.entries.clear();
        self.node_want.clear();
        self.pressure.clear();
        self.rates.clear();
        self.stale_jobs.clear();
        self.stale_nodes.clear();
    }

    /// Number of cached per-job entries (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no per-job entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached rates from the last [`RateCache::update`].
    pub fn rates(&self) -> &BTreeMap<JobId, f64> {
        &self.rates
    }

    /// Bring the cache up to date with the shared state and return the
    /// per-running-job rates — bit-identical to
    /// [`PerfModel::progress_rates`] over the same state, at the cost of
    /// rebuilding only what changed.
    pub fn update(
        &mut self,
        perf: &PerfModel,
        jobs: &JobState,
        cluster: &ClusterState,
    ) -> &BTreeMap<JobId, f64> {
        // Nodes whose pressure must be re-derived this round.
        let mut touched: BTreeSet<NodeId> = std::mem::take(&mut self.stale_nodes);
        // Jobs whose entries must be rebuilt.
        let mut stale: BTreeSet<JobId> = std::mem::take(&mut self.stale_jobs);

        // A node-liveness change invalidates every contributor there: the
        // set of nodes a placement feeds pressure into depends on which of
        // its nodes are alive.
        for node in &touched {
            if let Some(residents) = self.node_want.get(node) {
                stale.extend(residents.keys().copied());
            }
        }

        // Validation sweep, part 1: drop entries whose job left the
        // running set (completed, suspended, terminated, pruned).
        let running = jobs.running_ids();
        let gone: Vec<JobId> = self
            .entries
            .keys()
            .copied()
            .filter(|id| !running.contains(id))
            .collect();
        for id in gone {
            self.forget(id, &mut touched);
        }
        stale.retain(|id| running.contains(id));

        // Validation sweep, part 2 (the correctness net): any running job
        // whose entry is missing, degraded, or out of agreement with its
        // live placement/batch is stale, whether or not a delta named it.
        for job in jobs.running() {
            if stale.contains(&job.id) {
                continue;
            }
            match self.entries.get(&job.id) {
                Some(e)
                    if !e.degraded && e.batch == job.batch_size && e.placement == job.placement => {
                }
                _ => {
                    stale.insert(job.id);
                }
            }
        }

        // Rebuild stale entries' placement facts and pressure
        // contributions (serial: this mutates the reverse index).
        for id in &stale {
            self.forget(*id, &mut touched);
        }
        for id in &stale {
            let job = jobs.get(*id).expect("stale set is a subset of running");
            let entry = self.build_entry(perf, job, cluster, &mut touched);
            self.entries.insert(*id, entry);
        }

        // Re-derive pressure on touched nodes. Contributions sum in
        // job-id order (BTreeMap iteration), the exact accumulation order
        // of the from-scratch map. Jobs resident on a node whose pressure
        // bits changed need their contention term reapplied.
        let mut affected: BTreeSet<JobId> = stale;
        for node in touched {
            let fresh = match (
                self.node_want.get(&node),
                cluster.node(node).filter(|n| n.alive),
            ) {
                (Some(residents), Some(live)) if !residents.is_empty() => {
                    let mut want = 0.0;
                    for w in residents.values() {
                        want += *w;
                    }
                    Some((want / live.spec.cpu_cores as f64).max(1.0))
                }
                _ => None,
            };
            let old = self.pressure.get(&node).copied();
            let changed = match (old, fresh) {
                (Some(a), Some(b)) => a.to_bits() != b.to_bits(),
                (None, None) => false,
                _ => true,
            };
            if changed {
                match fresh {
                    Some(p) => self.pressure.insert(node, p),
                    None => self.pressure.remove(&node),
                };
                if let Some(residents) = self.node_want.get(&node) {
                    affected.extend(residents.keys().copied());
                }
            }
        }

        // Residual rate recompute over the affected set, in id order,
        // fanned out across scoped threads when the set is large.
        let work: Vec<JobId> = affected.into_iter().collect();
        self.recompute_rates(perf, jobs, &work);
        &self.rates
    }

    /// Remove one job's entry, contributions, and rate; touched nodes are
    /// collected for pressure re-derivation.
    fn forget(&mut self, id: JobId, touched: &mut BTreeSet<NodeId>) {
        self.rates.remove(&id);
        let Some(entry) = self.entries.remove(&id) else {
            return;
        };
        for node in &entry.nodes {
            if let Some(residents) = self.node_want.get_mut(node) {
                if residents.remove(&id).is_some() {
                    touched.insert(*node);
                    if residents.is_empty() {
                        self.node_want.remove(node);
                    }
                }
            }
        }
    }

    /// Build one job's entry: placement facts, memo key, and pressure
    /// contributions on its live nodes.
    fn build_entry(
        &mut self,
        perf: &PerfModel,
        job: &Job,
        cluster: &ClusterState,
        touched: &mut BTreeSet<NodeId>,
    ) -> Entry {
        let nodes = cluster.nodes_of(&job.placement);
        let n = job.placement.len() as u32;
        let consolidated = cluster.is_consolidated(&job.placement);
        let inter_bw = cluster.alloc_inter_bw(&job.placement);
        let gpu = PerfModel::placement_gpu_type(cluster, &job.placement);
        let mut resolved = 0usize;
        let mut degraded = false;
        for node in &nodes {
            let here = job
                .placement
                .iter()
                .filter(|g| cluster.gpu(**g).map(|r| r.node) == Some(*node))
                .count();
            resolved += here;
            if !cluster.node(*node).is_some_and(|nd| nd.alive) {
                degraded = true;
                continue;
            }
            self.node_want
                .entry(*node)
                .or_default()
                .insert(job.id, here as f64 * job.profile.cpus_per_gpu);
            touched.insert(*node);
        }
        if resolved != job.placement.len() {
            degraded = true;
        }
        let key = match &job.profile.pollux {
            Some(p) => BaseKey::Pollux {
                params: [
                    p.t_grad_per_sample.to_bits(),
                    p.t_sync.to_bits(),
                    p.gns.to_bits(),
                ],
                init_batch: p.init_batch,
                batch: job.batch_size,
                n,
                consolidated,
                spread_sync: perf.pollux_spread_sync_factor.to_bits(),
            },
            None => {
                let m = &job.profile.iter_model;
                BaseKey::Iter {
                    model: [
                        m.base_iter_s.to_bits(),
                        m.serial_frac.to_bits(),
                        m.comm_frac.to_bits(),
                        m.spread_penalty.to_bits(),
                    ],
                    gpu,
                    n,
                    consolidated,
                    inter_bw: inter_bw.to_bits(),
                }
            }
        };
        Entry {
            placement: job.placement.clone(),
            batch: job.batch_size,
            nodes,
            key,
            n,
            gpu,
            consolidated,
            inter_bw,
            degraded,
        }
    }

    /// Recompute rates for `work` (id-ordered): base from the memo (or
    /// fresh on a miss), contention from the maintained pressure map.
    /// Serial below the parallel threshold; above it, scoped threads
    /// claim chunks off an atomic counter with results merged in chunk
    /// (= id) order, so the outcome is byte-identical either way — the
    /// base rate is a pure function of its key, and the merge applies
    /// results in the same order the serial loop would.
    fn recompute_rates(&mut self, perf: &PerfModel, jobs: &JobState, work: &[JobId]) {
        /// One computed result: the rate, plus the memo insert on a miss.
        type Computed = (f64, Option<(BaseKey, f64)>);
        let results: Vec<Computed> = {
            let entries = &self.entries;
            let memo = &self.base;
            let pressure = &self.pressure;
            let compute = |id: JobId| -> Computed {
                let e = entries.get(&id).expect("affected jobs have entries");
                if e.placement.is_empty() {
                    return (0.0, None);
                }
                let job = jobs.get(id).expect("affected jobs are running");
                let (base, miss) = match memo.get(&e.key) {
                    Some(v) => (*v, None),
                    None => {
                        let b = perf.base_rate(job, e.n, e.gpu, e.consolidated, e.inter_bw);
                        (b, Some((e.key.clone(), b)))
                    }
                };
                (perf.contended_rate(base, job, &e.nodes, pressure), miss)
            };

            let workers = match self.threads {
                0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
                t => t,
            };
            if workers <= 1 || work.len() < self.par_threshold {
                work.iter().map(|id| compute(*id)).collect()
            } else {
                const CHUNK: usize = 256;
                let n_chunks = work.len().div_ceil(CHUNK);
                let slots: Mutex<Vec<Option<Vec<Computed>>>> =
                    Mutex::new((0..n_chunks).map(|_| None).collect());
                let next = AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for _ in 0..workers.min(n_chunks) {
                        scope.spawn(|| loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                break;
                            }
                            let lo = c * CHUNK;
                            let hi = (lo + CHUNK).min(work.len());
                            let out: Vec<Computed> =
                                work[lo..hi].iter().map(|id| compute(*id)).collect();
                            slots.lock().expect("no poisoned rate slots")[c] = Some(out);
                        });
                    }
                });
                slots
                    .into_inner()
                    .expect("no poisoned rate slots")
                    .into_iter()
                    .flat_map(|c| c.expect("every chunk index was claimed"))
                    .collect()
            }
        };
        for (id, (rate, miss)) in work.iter().zip(results) {
            if let Some((key, base)) = miss {
                self.base.insert(key, base);
            }
            self.rates.insert(*id, rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blox_core::cluster::NodeSpec;
    use blox_core::job::JobStatus;
    use blox_core::profile::JobProfile;

    fn cluster(nodes: u32) -> ClusterState {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), nodes);
        c
    }

    fn launch(c: &mut ClusterState, js: &mut JobState, id: u64, gpus: &[GpuGlobalId]) {
        let mut j = Job::new(
            JobId(id),
            0.0,
            gpus.len() as u32,
            1e9,
            JobProfile::synthetic("t", 0.3),
        );
        j.placement = gpus.to_vec();
        j.status = JobStatus::Running;
        c.allocate(JobId(id), gpus, 4.0).unwrap();
        js.add_new_jobs(vec![j]);
    }

    fn assert_matches_scratch(
        cache: &mut RateCache,
        perf: &PerfModel,
        js: &JobState,
        c: &ClusterState,
    ) {
        let cached = cache.update(perf, js, c).clone();
        let scratch = perf.progress_rates(js, c);
        assert_eq!(cached.len(), scratch.len());
        for (id, rate) in &scratch {
            assert_eq!(cached[id].to_bits(), rate.to_bits(), "job {id:?}");
        }
    }

    #[test]
    fn cold_warm_and_invalidated_rounds_match_scratch() {
        let mut c = cluster(4);
        let mut js = JobState::new();
        let free = c.free_gpus();
        launch(&mut c, &mut js, 1, &free[..4]);
        launch(&mut c, &mut js, 2, &[free[4], free[8]]); // spread
        let perf = PerfModel::default();
        let mut cache = RateCache::new().with_threads(1);

        assert_matches_scratch(&mut cache, &perf, &js, &c); // cold
        assert_matches_scratch(&mut cache, &perf, &js, &c); // warm (no-op)
        assert_eq!(cache.len(), 2);

        // Suspend job 2 through the proper channel.
        c.release(JobId(2));
        js.get_mut(JobId(2)).unwrap().placement.clear();
        js.set_status(JobId(2), JobStatus::Suspended).unwrap();
        cache.invalidate_job(JobId(2));
        assert_matches_scratch(&mut cache, &perf, &js, &c);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn sweep_catches_unreported_changes() {
        // No invalidate_job call at all: the validation sweep alone must
        // notice the placement change.
        let mut c = cluster(2);
        let mut js = JobState::new();
        let free = c.free_gpus();
        launch(&mut c, &mut js, 1, &free[..2]);
        let perf = PerfModel::default();
        let mut cache = RateCache::new().with_threads(1);
        assert_matches_scratch(&mut cache, &perf, &js, &c);

        c.release(JobId(1));
        c.allocate(JobId(1), &[free[0], free[4]], 4.0).unwrap();
        js.get_mut(JobId(1)).unwrap().placement = vec![free[0], free[4]];
        assert_matches_scratch(&mut cache, &perf, &js, &c);
    }

    #[test]
    fn node_churn_invalidation_keeps_exactness() {
        let mut c = cluster(2);
        let mut js = JobState::new();
        let free = c.free_gpus();
        launch(&mut c, &mut js, 1, &free[..2]);
        launch(&mut c, &mut js, 2, &[free[4], free[5]]);
        let perf = PerfModel::default();
        let mut cache = RateCache::new().with_threads(1);
        assert_matches_scratch(&mut cache, &perf, &js, &c);

        // Fail node 0 without requeueing job 1 (the mid-churn window).
        c.fail_node(NodeId(0)).unwrap();
        cache.invalidate_node(NodeId(0));
        assert_matches_scratch(&mut cache, &perf, &js, &c);

        // Revive: the degraded entry for job 1 must pick the node back up.
        c.revive_node(NodeId(0)).unwrap();
        cache.invalidate_node(NodeId(0));
        assert_matches_scratch(&mut cache, &perf, &js, &c);
        // Once healthy again, a further round still agrees.
        assert_matches_scratch(&mut cache, &perf, &js, &c);
    }

    #[test]
    fn base_memo_is_shared_across_identical_jobs() {
        let mut c = cluster(4);
        let mut js = JobState::new();
        let free = c.free_gpus();
        for i in 0..4 {
            launch(
                &mut c,
                &mut js,
                i,
                &free[i as usize * 4..i as usize * 4 + 4],
            );
        }
        let perf = PerfModel::default();
        let mut cache = RateCache::new().with_threads(1);
        cache.update(&perf, &js, &c);
        // Four identical consolidated 4-GPU placements share one key.
        assert_eq!(cache.base.len(), 1);
    }
}
