//! Sharded-simulation helpers: build a [`PodScheduler`] over
//! [`SimBackend`] shards.
//!
//! The meta-scheduler itself lives in [`blox_core::pods`]; this module
//! only assembles the common simulation shape — N equal pods of
//! p3.8xlarge-style nodes, one empty `SimBackend` per pod (the meta
//! level owns the trace), policies minted per pod from a factory — so
//! benches and tests spell the sharded and monolithic runs from the same
//! ingredients.

use blox_core::manager::RunConfig;
use blox_core::pods::{PodConfig, PodPolicies, PodScheduler};
use blox_core::Job;

use crate::backend::SimBackend;
use crate::cluster_of_v100;

/// A sharded simulator over `pods` equal V100 shards of
/// `nodes_per_pod` nodes each, fed by `jobs` through the meta level.
///
/// `make_policies` mints one fresh [`PodPolicies`] per pod — policies
/// hold per-shard incremental state, so sharing an instance across pods
/// would corrupt both. `make_backend` mints each pod's backend from its
/// pod index (start from an empty trace — trace jobs go through the
/// meta level, not the shard queues) so callers can attach churn or
/// overhead settings per shard.
///
/// ```
/// use blox_core::manager::{ExecMode, RunConfig, StopCondition};
/// use blox_core::pods::{PodConfig, PodPolicies};
/// use blox_policies::admission::AcceptAll;
/// use blox_policies::placement::FirstFreePlacement;
/// use blox_policies::scheduling::Fifo;
///
/// let run = RunConfig {
///     round_duration: 300.0,
///     max_rounds: 100,
///     stop: StopCondition::AllJobsDone,
///     mode: ExecMode::EventDriven,
/// };
/// let mut sched = blox_sim::pods::sharded_v100(
///     2,
///     4,
///     vec![],
///     run,
///     PodConfig::default(),
///     |_| blox_sim::SimBackend::new(blox_workloads::Trace::new(vec![])),
///     || PodPolicies {
///         admission: Box::new(AcceptAll),
///         scheduling: Box::new(Fifo::new()),
///         placement: Box::new(FirstFreePlacement::new()),
///     },
/// );
/// assert_eq!(sched.pod_count(), 2);
/// let stats = sched.run();
/// assert_eq!(stats.records.len(), 0);
/// ```
pub fn sharded_v100(
    pods: usize,
    nodes_per_pod: u32,
    jobs: Vec<Job>,
    run: RunConfig,
    cfg: PodConfig,
    mut make_backend: impl FnMut(usize) -> SimBackend,
    mut make_policies: impl FnMut() -> PodPolicies,
) -> PodScheduler<SimBackend> {
    let mut sched = PodScheduler::new(run, cfg);
    for pod in 0..pods {
        sched.add_pod(
            make_backend(pod),
            cluster_of_v100(nodes_per_pod),
            make_policies(),
        );
    }
    sched.submit(jobs);
    sched
}
