//! Cluster churn injection: scheduled node failures and recoveries.

use blox_core::ids::NodeId;

/// One scheduled churn event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEvent {
    /// Fail the node at the given simulated time; running jobs on it are
    /// requeued by the backend.
    Fail {
        /// When the failure occurs.
        at: f64,
        /// Which node fails.
        node: NodeId,
    },
    /// Bring a failed node back at the given simulated time.
    Revive {
        /// When the node returns.
        at: f64,
        /// Which node returns.
        node: NodeId,
    },
}

impl ChurnEvent {
    /// Event timestamp.
    pub fn at(&self) -> f64 {
        match self {
            ChurnEvent::Fail { at, .. } | ChurnEvent::Revive { at, .. } => *at,
        }
    }
}

/// An ordered script of churn events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnScript {
    events: Vec<ChurnEvent>,
    cursor: usize,
}

impl ChurnScript {
    /// Build a script; events are sorted by time.
    pub fn new(mut events: Vec<ChurnEvent>) -> Self {
        events.sort_by(|a, b| a.at().partial_cmp(&b.at()).expect("finite times"));
        ChurnScript { events, cursor: 0 }
    }

    /// Drain events due at or before `now`.
    pub fn due(&mut self, now: f64) -> Vec<ChurnEvent> {
        let mut out = Vec::new();
        while self.cursor < self.events.len() && self.events[self.cursor].at() <= now {
            out.push(self.events[self.cursor]);
            self.cursor += 1;
        }
        out
    }

    /// Events not yet delivered.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Timestamp of the next undelivered event, if any.
    pub fn next_at(&self) -> Option<f64> {
        self.events.get(self.cursor).map(|e| e.at())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_delivers_in_time_order() {
        let mut s = ChurnScript::new(vec![
            ChurnEvent::Revive {
                at: 50.0,
                node: NodeId(1),
            },
            ChurnEvent::Fail {
                at: 10.0,
                node: NodeId(1),
            },
        ]);
        assert_eq!(s.remaining(), 2);
        let first = s.due(10.0);
        assert_eq!(first.len(), 1);
        assert!(matches!(first[0], ChurnEvent::Fail { .. }));
        assert!(s.due(20.0).is_empty());
        let second = s.due(100.0);
        assert_eq!(second.len(), 1);
        assert_eq!(s.remaining(), 0);
    }
}
