//! Parallel experiment-sweep engine.
//!
//! The paper's headline claim is that one modular toolkit replays many
//! schedulers over many traces and loads. A [`SweepGrid`] makes that an
//! API: declare a grid of **policy composition × load × seed** over one
//! trace generator, and [`SweepGrid::run`] fans the trials out across OS
//! threads, each trial running its own [`BloxManager`] over its own
//! [`SimBackend`] (event-driven by default, so empty rounds are skipped).
//!
//! Trials are completely independent and individually deterministic, and
//! the report keeps them in grid order, so the aggregated output —
//! including [`SweepReport::to_json`] — is byte-identical no matter how
//! many worker threads execute the grid.
//!
//! ```
//! use blox_sim::sweep::{PolicySet, SweepGrid};
//! use blox_workloads::{ModelZoo, PhillyTraceGen};
//!
//! let grid = SweepGrid::builder()
//!     .trace(|load, seed| {
//!         PhillyTraceGen::new(&ModelZoo::standard(), load).generate(6, seed)
//!     })
//!     .cluster_v100(2)
//!     .policy(PolicySet::baseline())
//!     .loads(&[4.0, 8.0])
//!     .seeds(&[1, 2])
//!     .build();
//! assert_eq!(grid.trial_count(), 4);
//!
//! let report = grid.run();
//! assert_eq!(report.trials.len(), 4);
//! assert!(report.trials.iter().all(|t| t.summary.jobs == 6));
//! // Byte-identical regardless of worker-thread count:
//! assert_eq!(report.to_json(), grid.run_serial().to_json());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use blox_core::cluster::ClusterState;
use blox_core::fault::splitmix64;
use blox_core::job::Job;
use blox_core::manager::{BloxManager, ExecMode, RunConfig, StopCondition};
use blox_core::metrics::{RunStats, Summary};
use blox_core::place_util::{plan_placement, PickStrategy};
use blox_core::policy::{
    AdmissionFactory, AdmissionPolicy, Placement, PlacementFactory, PlacementPolicy,
    SchedulingDecision, SchedulingFactory, SchedulingPolicy,
};
use blox_core::state::JobState;
use blox_workloads::Trace;

use crate::{cluster_of_v100, PerfModel, SimBackend};

/// Builds the trace for one trial from `(load, seed)`. The `load`
/// dimension is the grid's scalar trace parameter — jobs/hour for the
/// arrival-rate sweeps, but any generator knob works.
pub type TraceFactory = Box<dyn Fn(f64, u64) -> Trace + Send + Sync>;

/// Builds a fresh cluster for one trial.
pub type ClusterFactory = Box<dyn Fn() -> ClusterState + Send + Sync>;

/// One named admission + scheduling + placement composition; the
/// "policy" axis of a sweep. Factories (not instances) so every trial
/// gets a fresh, independent policy state.
pub struct PolicySet {
    name: String,
    admission: AdmissionFactory,
    scheduling: SchedulingFactory,
    placement: PlacementFactory,
}

impl PolicySet {
    /// A named composition from three policy factories.
    pub fn new(
        name: impl Into<String>,
        admission: impl Fn() -> Box<dyn AdmissionPolicy> + Send + Sync + 'static,
        scheduling: impl Fn() -> Box<dyn SchedulingPolicy> + Send + Sync + 'static,
        placement: impl Fn() -> Box<dyn PlacementPolicy> + Send + Sync + 'static,
    ) -> Self {
        PolicySet {
            name: name.into(),
            admission: Box::new(admission),
            scheduling: Box::new(scheduling),
            placement: Box::new(placement),
        }
    }

    /// A minimal accept-all / FIFO / first-free composition, useful for
    /// tests and examples without pulling in the policy library.
    pub fn baseline() -> Self {
        PolicySet::new(
            "baseline-fifo",
            || Box::new(BaselineAdmit),
            || Box::new(BaselineFifo),
            || Box::new(BaselinePlace),
        )
    }

    /// The composition's name, used as the policy key in results.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for PolicySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicySet")
            .field("name", &self.name)
            .finish()
    }
}

/// Accept-everything admission for [`PolicySet::baseline`].
struct BaselineAdmit;

impl AdmissionPolicy for BaselineAdmit {
    fn admit(&mut self, new: Vec<Job>, _: &JobState, _: &ClusterState, _: f64) -> Vec<Job> {
        new
    }

    fn name(&self) -> &str {
        "accept-all"
    }
}

/// Arrival-ordered scheduling for [`PolicySet::baseline`].
struct BaselineFifo;

impl SchedulingPolicy for BaselineFifo {
    fn schedule(&mut self, js: &JobState, _: &ClusterState, _: f64) -> SchedulingDecision {
        let mut jobs: Vec<&Job> = js.active().collect();
        jobs.sort_by(|a, b| {
            a.arrival_time
                .partial_cmp(&b.arrival_time)
                .expect("arrival times are finite")
                .then(a.id.cmp(&b.id))
        });
        SchedulingDecision::from_priority_order(jobs)
    }

    fn stable_between_events(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "fifo"
    }
}

/// First-free placement for [`PolicySet::baseline`].
struct BaselinePlace;

impl PlacementPolicy for BaselinePlace {
    fn place(
        &mut self,
        d: &SchedulingDecision,
        js: &JobState,
        c: &ClusterState,
        _: f64,
    ) -> Placement {
        plan_placement(d, js, c, |_| PickStrategy::FirstFree)
    }

    fn stable_between_events(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "first-free"
    }
}

/// Outcome of one grid trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Name of the [`PolicySet`] that ran.
    pub policy: String,
    /// The trace parameter of this trial.
    pub load: f64,
    /// The trace seed of this trial.
    pub seed: u64,
    /// Summary over the reporting window: the tracked id window when the
    /// grid stops on [`StopCondition::TrackedWindowDone`], every record
    /// otherwise.
    pub summary: Summary,
    /// Full run statistics (per-job records, round counts, utilization).
    pub stats: RunStats,
}

/// A declarative experiment grid: policy × load × seed over one trace
/// generator and cluster shape. Construct with [`SweepGrid::builder`].
pub struct SweepGrid {
    policies: Vec<PolicySet>,
    loads: Vec<f64>,
    seeds: Vec<u64>,
    trace: TraceFactory,
    cluster: ClusterFactory,
    perf: PerfModel,
    charge_overheads: bool,
    round_duration: f64,
    max_rounds: u64,
    stop: StopCondition,
    mode: ExecMode,
    threads: usize,
}

impl std::fmt::Debug for SweepGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepGrid")
            .field("policies", &self.policies)
            .field("loads", &self.loads)
            .field("seeds", &self.seeds)
            .field("round_duration", &self.round_duration)
            .field("stop", &self.stop)
            .field("mode", &self.mode)
            .field("threads", &self.threads)
            .finish()
    }
}

impl SweepGrid {
    /// Start building a grid. See the [module docs](self) for a complete
    /// example.
    pub fn builder() -> SweepGridBuilder {
        SweepGridBuilder::default()
    }

    /// Number of trials the grid will run (policies × loads × seeds).
    pub fn trial_count(&self) -> usize {
        self.policies.len() * self.loads.len() * self.seeds.len()
    }

    /// The `(policy index, load, seed)` triple of trial `i`, in grid
    /// order: policies outermost, seeds innermost.
    fn trial_spec(&self, i: usize) -> (&PolicySet, f64, u64) {
        let per_policy = self.loads.len() * self.seeds.len();
        let set = &self.policies[i / per_policy];
        let rest = i % per_policy;
        (
            set,
            self.loads[rest / self.seeds.len()],
            self.seeds[rest % self.seeds.len()],
        )
    }

    /// Run one trial to completion.
    fn run_trial(&self, set: &PolicySet, load: f64, seed: u64) -> TrialResult {
        let mut backend = SimBackend::new((self.trace)(load, seed)).with_perf(self.perf.clone());
        if !self.charge_overheads {
            backend = backend.without_overheads();
        }
        let mut mgr = BloxManager::new(
            backend,
            (self.cluster)(),
            RunConfig {
                round_duration: self.round_duration,
                max_rounds: self.max_rounds,
                stop: self.stop,
                mode: self.mode,
            },
        );
        let mut admission = (set.admission)();
        let mut scheduling = (set.scheduling)();
        let mut placement = (set.placement)();
        let stats = mgr.run(admission.as_mut(), scheduling.as_mut(), placement.as_mut());
        let summary = match self.stop {
            StopCondition::TrackedWindowDone { lo, hi } => stats.summary_tracked(lo, hi),
            _ => stats.summary(),
        };
        TrialResult {
            policy: set.name.clone(),
            load,
            seed,
            summary,
            stats,
        }
    }

    /// Run every trial on the calling thread, in grid order. The
    /// reference execution for determinism tests; produces the same
    /// report as [`run`](Self::run).
    pub fn run_serial(&self) -> SweepReport {
        let trials = (0..self.trial_count())
            .map(|i| {
                let (set, load, seed) = self.trial_spec(i);
                self.run_trial(set, load, seed)
            })
            .collect();
        SweepReport { trials }
    }

    /// Run the grid, fanning trials out across OS threads (the builder's
    /// `threads` setting; `0` means one per available CPU). Results are
    /// reported in grid order regardless of completion order, so the
    /// report is identical to [`run_serial`](Self::run_serial).
    pub fn run(&self) -> SweepReport {
        let n = self.trial_count();
        let workers = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        }
        .min(n.max(1));
        if workers <= 1 {
            return self.run_serial();
        }

        let slots: Mutex<Vec<Option<TrialResult>>> = Mutex::new((0..n).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (set, load, seed) = self.trial_spec(i);
                    let result = self.run_trial(set, load, seed);
                    slots.lock().expect("no poisoned trial slots")[i] = Some(result);
                });
            }
        });
        let trials = slots
            .into_inner()
            .expect("no poisoned trial slots")
            .into_iter()
            .map(|r| r.expect("every trial index was claimed"))
            .collect();
        SweepReport { trials }
    }
}

/// Builder for [`SweepGrid`]; all settings have documented defaults
/// except the trace factory, which is required.
pub struct SweepGridBuilder {
    policies: Vec<PolicySet>,
    loads: Vec<f64>,
    seeds: Vec<u64>,
    trace: Option<TraceFactory>,
    cluster: ClusterFactory,
    perf: PerfModel,
    charge_overheads: bool,
    round_duration: f64,
    max_rounds: u64,
    stop: StopCondition,
    mode: ExecMode,
    threads: usize,
}

impl Default for SweepGridBuilder {
    fn default() -> Self {
        SweepGridBuilder {
            policies: Vec::new(),
            loads: vec![1.0],
            seeds: vec![42],
            trace: None,
            cluster: Box::new(|| cluster_of_v100(32)),
            perf: PerfModel::default(),
            charge_overheads: true,
            round_duration: 300.0,
            max_rounds: 500_000,
            stop: StopCondition::AllJobsDone,
            mode: ExecMode::EventDriven,
            threads: 0,
        }
    }
}

impl SweepGridBuilder {
    /// Set the trace factory (required): builds one trial's trace from
    /// `(load, seed)`.
    pub fn trace(mut self, f: impl Fn(f64, u64) -> Trace + Send + Sync + 'static) -> Self {
        self.trace = Some(Box::new(f));
        self
    }

    /// Set the cluster factory. Default: 32 p3.8xlarge-style V100 nodes.
    pub fn cluster(mut self, f: impl Fn() -> ClusterState + Send + Sync + 'static) -> Self {
        self.cluster = Box::new(f);
        self
    }

    /// Convenience: a cluster of `nodes` V100 nodes ([`cluster_of_v100`]).
    pub fn cluster_v100(self, nodes: u32) -> Self {
        self.cluster(move || cluster_of_v100(nodes))
    }

    /// Add one policy composition to the grid's policy axis.
    pub fn policy(mut self, set: PolicySet) -> Self {
        self.policies.push(set);
        self
    }

    /// Set the load axis. Default: `[1.0]`.
    pub fn loads(mut self, loads: &[f64]) -> Self {
        self.loads = loads.to_vec();
        self
    }

    /// Set the seed axis explicitly. Default: `[42]`.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Derive `n` deterministic per-trial seeds from one base seed (a
    /// splitmix64 stream, so grids written as "base seed + N repeats"
    /// reproduce bit-for-bit).
    pub fn seeds_from(self, base: u64, n: usize) -> Self {
        let mut state = base;
        let seeds: Vec<u64> = (0..n).map(|_| splitmix64(&mut state)).collect();
        self.seeds(&seeds)
    }

    /// Set the scheduling round length in seconds. Default: 300.
    pub fn round_duration(mut self, seconds: f64) -> Self {
        self.round_duration = seconds;
        self
    }

    /// Cap rounds per trial. Default: 500 000.
    pub fn max_rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Set the per-trial stop condition. Default:
    /// [`StopCondition::AllJobsDone`].
    pub fn stop(mut self, stop: StopCondition) -> Self {
        self.stop = stop;
        self
    }

    /// Steady-state measurement: stop once jobs `lo..=hi` finish and
    /// summarize only those (the paper's tracked-window methodology).
    pub fn tracked_window(self, lo: u64, hi: u64) -> Self {
        self.stop(StopCondition::TrackedWindowDone { lo, hi })
    }

    /// Replace the performance model. Default: [`PerfModel::default`].
    pub fn perf(mut self, perf: PerfModel) -> Self {
        self.perf = perf;
        self
    }

    /// Disable checkpoint/restore overhead charging (see
    /// [`SimBackend::without_overheads`]).
    pub fn without_overheads(mut self) -> Self {
        self.charge_overheads = false;
        self
    }

    /// Select the round-loop mode. Default: [`ExecMode::EventDriven`] —
    /// the fast path is the engine's point; use
    /// [`ExecMode::FixedRounds`] to reproduce the seed's tick-every-round
    /// behavior (the benchmark comparison does).
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Worker threads for [`SweepGrid::run`]; `0` (default) uses one per
    /// available CPU.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Finish the grid.
    ///
    /// # Panics
    ///
    /// Panics if no trace factory was set or any axis is empty — a grid
    /// that cannot run any trial is a configuration bug, reported at
    /// build time.
    pub fn build(self) -> SweepGrid {
        assert!(
            !self.policies.is_empty() && !self.loads.is_empty() && !self.seeds.is_empty(),
            "SweepGrid requires at least one policy, one load, and one seed"
        );
        SweepGrid {
            trace: self.trace.expect("SweepGrid requires a trace factory"),
            policies: self.policies,
            loads: self.loads,
            seeds: self.seeds,
            cluster: self.cluster,
            perf: self.perf,
            charge_overheads: self.charge_overheads,
            round_duration: self.round_duration,
            max_rounds: self.max_rounds,
            stop: self.stop,
            mode: self.mode,
            threads: self.threads,
        }
    }
}

/// All trial results of one grid, in grid order.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Per-trial results: policies outermost, seeds innermost.
    pub trials: Vec<TrialResult>,
}

impl SweepReport {
    /// The trial for an exact `(policy, load, seed)` cell, if present.
    pub fn trial(&self, policy: &str, load: f64, seed: u64) -> Option<&TrialResult> {
        self.trials
            .iter()
            .find(|t| t.policy == policy && t.load == load && t.seed == seed)
    }

    /// Mean of `metric` over every seed of a `(policy, load)` cell.
    ///
    /// # Panics
    ///
    /// Panics when no trial matches `(policy, load)` — an absent cell is
    /// a query bug (typo'd policy name, load not on the grid), and
    /// fabricating a 0.0 there would silently corrupt figure output.
    /// Use [`trial`](Self::trial) to probe for presence.
    pub fn mean_over_seeds(
        &self,
        policy: &str,
        load: f64,
        metric: impl Fn(&TrialResult) -> f64,
    ) -> f64 {
        let cells: Vec<f64> = self
            .trials
            .iter()
            .filter(|t| t.policy == policy && t.load == load)
            .map(&metric)
            .collect();
        assert!(
            !cells.is_empty(),
            "no sweep trial matches policy {policy:?} at load {load}"
        );
        cells.iter().sum::<f64>() / cells.len() as f64
    }

    /// Serialize every trial's aggregate statistics as one JSON document.
    ///
    /// Field order and number formatting are fixed, and trials are in
    /// grid order, so equal reports serialize to equal bytes — the
    /// property the determinism tests pin down.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"trials\":[");
        for (i, t) in self.trials.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"policy\":{},\"load\":{},\"seed\":{},\"jobs\":{},\
                 \"avg_jct\":{},\"p50_jct\":{},\"p90_jct\":{},\"p99_jct\":{},\
                 \"avg_responsiveness\":{},\"makespan\":{},\"avg_preemptions\":{},\
                 \"rounds\":{},\"skipped_rounds\":{},\"mean_utilization\":{},\
                 \"end_time\":{}}}",
                json_string(&t.policy),
                json_f64(t.load),
                t.seed,
                t.summary.jobs,
                json_f64(t.summary.avg_jct),
                json_f64(t.summary.p50_jct),
                json_f64(t.summary.p90_jct),
                json_f64(t.summary.p99_jct),
                json_f64(t.summary.avg_responsiveness),
                json_f64(t.summary.makespan),
                json_f64(t.summary.avg_preemptions),
                t.stats.rounds,
                t.stats.skipped_rounds,
                json_f64(t.stats.mean_utilization()),
                json_f64(t.stats.end_time),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Append [`to_json`](Self::to_json) as one line to the file named by
    /// the `BLOX_SWEEP_JSON` environment variable (mirroring the bench
    /// harness's `BLOX_BENCH_JSON` convention). No-op when unset; I/O
    /// errors are reported to stderr, not propagated — emission is a
    /// side channel, never the experiment's result.
    pub fn emit_json_env(&self) {
        use std::io::Write as _;
        let Ok(path) = std::env::var("BLOX_SWEEP_JSON") else {
            return;
        };
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{}", self.to_json()));
        if let Err(e) = appended {
            eprintln!("BLOX_SWEEP_JSON: failed to append to {path}: {e}");
        }
    }
}

/// JSON number: shortest round-trip form; non-finite values become
/// `null` (metrics are finite in practice, but JSON has no NaN).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Minimally escaped JSON string (policy names are plain identifiers,
/// but quoting must never produce invalid JSON).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid(threads: usize, mode: ExecMode) -> SweepGrid {
        SweepGrid::builder()
            .trace(|load, seed| {
                let zoo = blox_workloads::ModelZoo::standard();
                blox_workloads::PhillyTraceGen::new(&zoo, load).generate(8, seed)
            })
            .cluster_v100(2)
            .policy(PolicySet::baseline())
            .loads(&[6.0, 12.0])
            .seeds(&[1, 2])
            .mode(mode)
            .threads(threads)
            .build()
    }

    #[test]
    fn grid_order_is_policy_load_seed() {
        let grid = tiny_grid(1, ExecMode::EventDriven);
        let (_, l0, s0) = grid.trial_spec(0);
        let (_, l1, s1) = grid.trial_spec(1);
        let (_, l2, s2) = grid.trial_spec(2);
        assert_eq!((l0, s0), (6.0, 1));
        assert_eq!((l1, s1), (6.0, 2));
        assert_eq!((l2, s2), (12.0, 1));
        assert_eq!(grid.trial_count(), 4);
    }

    #[test]
    fn parallel_report_matches_serial_bytes() {
        let parallel = tiny_grid(4, ExecMode::EventDriven).run();
        let serial = tiny_grid(1, ExecMode::EventDriven).run_serial();
        assert_eq!(parallel.to_json(), serial.to_json());
        // And the underlying records, not just the serialized summary.
        for (p, s) in parallel.trials.iter().zip(serial.trials.iter()) {
            assert_eq!(p.stats.records, s.stats.records);
        }
    }

    #[test]
    fn event_driven_grid_matches_fixed_rounds_results() {
        let fast = tiny_grid(1, ExecMode::EventDriven).run_serial();
        let fixed = tiny_grid(1, ExecMode::FixedRounds).run_serial();
        for (a, b) in fast.trials.iter().zip(fixed.trials.iter()) {
            assert_eq!(a.stats.records.len(), b.stats.records.len());
            assert_eq!(a.stats.rounds, b.stats.rounds);
            assert!(a.stats.skipped_rounds > 0);
            assert_eq!(b.stats.skipped_rounds, 0);
            for (ra, rb) in a.stats.records.iter().zip(b.stats.records.iter()) {
                assert_eq!(ra.id, rb.id);
                assert!(
                    (ra.completion - rb.completion).abs() <= 1e-6 * rb.completion.abs().max(1.0),
                    "job {:?}: {} vs {}",
                    ra.id,
                    ra.completion,
                    rb.completion
                );
            }
        }
    }

    #[test]
    fn mean_over_seeds_averages_cells() {
        let report = tiny_grid(2, ExecMode::EventDriven).run();
        let mean = report.mean_over_seeds("baseline-fifo", 6.0, |t| t.summary.jobs as f64);
        assert_eq!(mean, 8.0);
        assert!(report.trial("nope", 6.0, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "no sweep trial matches")]
    fn mean_over_seeds_rejects_absent_cells() {
        let report = tiny_grid(1, ExecMode::EventDriven).run();
        let _ = report.mean_over_seeds("nope", 6.0, |t| t.summary.avg_jct);
    }

    #[test]
    fn seeds_from_is_deterministic_and_distinct() {
        let a = SweepGridBuilder::default().seeds_from(7, 4).seeds;
        let b = SweepGridBuilder::default().seeds_from(7, 4).seeds;
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn json_escapes_and_formats() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    #[should_panic(expected = "trace factory")]
    fn build_without_trace_panics() {
        let _ = SweepGrid::builder().policy(PolicySet::baseline()).build();
    }
}
