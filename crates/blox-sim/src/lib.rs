//! Discrete round-based cluster simulator for the Blox toolkit.
//!
//! Implements the [`blox_core::Backend`] trait so the exact same scheduling
//! loop and policies used for deployment run in simulation — the paper's
//! core reproducibility claim (§3, §7). The simulator provides:
//!
//! * a performance model ([`perf`]) translating a job's placement into a
//!   progress rate (iteration scaling, placement/spread penalties tied to
//!   interconnect bandwidth, CPU contention, Pollux goodput);
//! * exact sub-round completion timestamps;
//! * launch/restore overhead accounting;
//! * cluster churn injection (node failures and recoveries);
//! * an event-driven fast path (the [`blox_core::Backend::next_event_hint`]
//!   implementation) that lets the manager skip empty rounds;
//! * a parallel experiment-sweep engine ([`sweep`]) that runs whole
//!   policy × load × seed grids across OS threads.

#![warn(missing_docs)]

pub mod backend;
pub mod churn;
pub mod perf;
pub mod pods;
pub mod rate_cache;
pub mod sweep;

pub use backend::SimBackend;
pub use churn::ChurnEvent;
pub use perf::PerfModel;
pub use rate_cache::RateCache;
pub use sweep::{PolicySet, SweepGrid, SweepReport, TrialResult};

use blox_core::cluster::{ClusterState, NodeSpec};

/// Convenience: a cluster of `nodes` p3.8xlarge-style servers
/// (4× V100, 10 Gbps interconnect), the paper's default hardware.
///
/// ```
/// let cluster = blox_sim::cluster_of_v100(32);
/// assert_eq!(cluster.total_gpus(), 128);
/// assert_eq!(cluster.free_gpu_count(), 128);
/// ```
pub fn cluster_of_v100(nodes: u32) -> ClusterState {
    let mut c = ClusterState::new();
    c.add_nodes(&NodeSpec::v100_p3_8xlarge(), nodes);
    c
}

/// Convenience: a cluster of Tiresias-style servers (4× P100, 100 Gbps).
///
/// ```
/// use blox_core::GpuType;
///
/// let cluster = blox_sim::cluster_of_p100(16);
/// assert_eq!(cluster.total_gpus(), 64);
/// assert!(cluster.gpus().all(|g| g.gpu_type == GpuType::P100));
/// ```
pub fn cluster_of_p100(nodes: u32) -> ClusterState {
    let mut c = ClusterState::new();
    c.add_nodes(&NodeSpec::p100_tiresias(), nodes);
    c
}
