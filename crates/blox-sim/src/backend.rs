//! The simulator execution backend.

use std::collections::VecDeque;

use blox_core::cluster::ClusterState;
use blox_core::delta::StateDelta;
use blox_core::fault::{FaultPlan, FaultState, FaultVerdict};
use blox_core::ids::JobId;
use blox_core::job::{Job, JobStatus};
use blox_core::manager::{apply_placement, Backend, PlacementOutcome};
use blox_core::policy::Placement;
use blox_core::state::JobState;

use crate::churn::{ChurnEvent, ChurnScript};
use crate::perf::PerfModel;
use crate::rate_cache::RateCache;

/// Fault-injection layer over the simulator's job status reports.
///
/// The simulator has no real wire, so the "link" the [`FaultPlan`]
/// perturbs is the status-report path: the application metrics (`loss`,
/// `iter_time`, `goodput`) that running jobs would push through the
/// client library each round. Ground-truth progress is untouched — jobs
/// still complete at exact sub-round instants — but what *policies* see
/// in the per-job metric store can now be dropped (stale values persist)
/// or delayed (old samples land rounds later), reproducing the
/// stale-metrics scenarios metric-driven policies (Pollux, Optimus, loss
/// termination) face on a lossy cluster. Fully deterministic: one
/// decision stream, consumed in job-id order each round.
#[derive(Debug, Clone)]
struct SimFaults {
    state: FaultState,
    /// Delayed reports awaiting their release time, in admission order.
    delayed: VecDeque<(f64, JobId, &'static str, f64)>,
}

impl SimFaults {
    /// Deliver matured reports, then admit this round's fresh reports.
    fn route(&mut self, now: f64, fresh: Vec<(JobId, &'static str, f64)>, jobs: &mut JobState) {
        while let Some((release, _, _, _)) = self.delayed.front() {
            if *release > now {
                break;
            }
            let (_, job, key, value) = self.delayed.pop_front().expect("front exists");
            if let Some(j) = jobs.get_mut(job) {
                j.push_metric(key, value);
            }
        }
        for (job, key, value) in fresh {
            match self.state.verdict(now) {
                FaultVerdict::Drop => {}
                FaultVerdict::Deliver {
                    copies, delay_s, ..
                } => {
                    if delay_s > 0.0 {
                        for _ in 0..copies {
                            self.delayed.push_back((now + delay_s, job, key, value));
                        }
                    } else if let Some(j) = jobs.get_mut(job) {
                        // Duplicates overwrite the same key; reordering is
                        // moot within a keyed store.
                        j.push_metric(key, value);
                    }
                }
            }
        }
    }
}

/// Simulated execution backend: drives the clock, feeds trace arrivals,
/// applies the performance model, and mimics the launch/preempt mechanism
/// with overhead accounting.
///
/// `SimBackend` is `Clone`, which the automatic scheduler synthesizer uses
/// to fork lookahead simulations from live state.
#[derive(Debug, Clone)]
pub struct SimBackend {
    clock: f64,
    last_metrics_update: f64,
    arrivals: VecDeque<Job>,
    perf: PerfModel,
    /// Incremental progress-rate cache: delta-invalidated, memoized base
    /// throughput, bit-identical to the from-scratch model (the fix for
    /// the O(jobs²) Collect stage).
    rates: RateCache,
    churn: ChurnScript,
    faults: Option<SimFaults>,
    /// Charge checkpoint/restore overheads on preemption and launch. The
    /// lease-renewal fidelity experiments disable this to isolate effects.
    pub charge_overheads: bool,
}

impl SimBackend {
    /// Backend over a trace (jobs are arrival-sorted, which
    /// `Trace::new` guarantees).
    pub fn new(trace: blox_workloads::Trace) -> Self {
        Self::from_jobs(trace.jobs)
    }

    /// Backend directly over a job list.
    pub fn from_jobs(jobs: Vec<Job>) -> Self {
        SimBackend {
            clock: 0.0,
            last_metrics_update: 0.0,
            arrivals: jobs.into(),
            perf: PerfModel::default(),
            rates: RateCache::new(),
            churn: ChurnScript::default(),
            faults: None,
            charge_overheads: true,
        }
    }

    /// Replace the performance model (and drop any cached rates derived
    /// from the old one).
    pub fn with_perf(mut self, perf: PerfModel) -> Self {
        self.perf = perf;
        self.rates.clear();
        self
    }

    /// Attach a churn script (scheduled node failures/recoveries).
    pub fn with_churn(mut self, events: Vec<ChurnEvent>) -> Self {
        self.churn = ChurnScript::new(events);
        self
    }

    /// Attach a deterministic fault plan perturbing the job status
    /// reports (the simulated "wire"): application metrics can be
    /// dropped or delayed while ground-truth progress stays exact,
    /// opening stale-metrics scenarios for metric-driven policies. A
    /// quiet plan is discarded, keeping the fast path untouched.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = if plan.is_quiet() {
            None
        } else {
            Some(SimFaults {
                state: plan.state(0),
                delayed: VecDeque::new(),
            })
        };
        self
    }

    /// Disable launch/restore overhead charging.
    pub fn without_overheads(mut self) -> Self {
        self.charge_overheads = false;
        self
    }

    /// The performance model in use.
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// Remaining (not yet arrived) jobs.
    pub fn arrivals_remaining(&self) -> usize {
        self.arrivals.len()
    }

    /// Enqueue meta-routed arrivals at the back of the wait queue (the
    /// [`blox_core::pods::PodBackend`] contract): the pod meta-scheduler
    /// owns the global trace and pushes each job into its assigned pod's
    /// shard at the round it falls due.
    pub fn push_arrivals(&mut self, jobs: Vec<Job>) {
        self.arrivals.extend(jobs);
    }
}

impl blox_core::pods::PodBackend for SimBackend {
    fn push_arrivals(&mut self, jobs: Vec<Job>) {
        SimBackend::push_arrivals(self, jobs);
    }
}

impl Backend for SimBackend {
    fn now(&self) -> f64 {
        self.clock
    }

    fn update_cluster(&mut self, cluster: &mut ClusterState) {
        for event in self.churn.due(self.clock) {
            match event {
                ChurnEvent::Fail { node, .. } => {
                    if let Ok(_evicted) = cluster.fail_node(node) {
                        // Eviction handling happens in update_metrics via
                        // placement scanning: jobs whose GPUs vanished are
                        // requeued there. Here we only flip node state.
                        self.rates.invalidate_node(node);
                    }
                }
                ChurnEvent::Revive { node, .. } => {
                    if cluster.revive_node(node).is_ok() {
                        self.rates.invalidate_node(node);
                    }
                }
            }
        }
    }

    /// Invalidate the rate cache from the round's delta: every job whose
    /// placement, status, or batch size the round changed, and every node
    /// whose liveness flipped. Unchanged jobs keep last round's rate.
    fn observe_delta(&mut self, delta: &StateDelta) {
        for id in delta
            .launched
            .iter()
            .chain(&delta.suspended)
            .chain(&delta.terminated)
            .chain(&delta.completed)
            .chain(&delta.retuned)
            .chain(&delta.migrated_out)
        {
            self.rates.invalidate_job(*id);
        }
        for node in delta.failed_nodes.iter().chain(&delta.revived_nodes) {
            self.rates.invalidate_node(*node);
        }
    }

    fn pop_wait_queue(&mut self, now: f64) -> Vec<Job> {
        let mut out = Vec::new();
        while let Some(front) = self.arrivals.front() {
            if front.arrival_time <= now {
                out.push(self.arrivals.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
        out
    }

    fn peek_next_arrival(&self) -> Option<(JobId, f64)> {
        self.arrivals.front().map(|j| (j.id, j.arrival_time))
    }

    fn update_metrics(&mut self, cluster: &mut ClusterState, jobs: &mut JobState, elapsed: f64) {
        // The simulator's own clock is authoritative for elapsed time:
        // `advance_round` may have jumped several rounds on the
        // event-driven fast path, and metric integration must cover the
        // whole span since the last checkpoint regardless of what cadence
        // the caller believes it is running at. The manager now reports
        // its own measured elapsed span; assert the two views agree so
        // the net/runtime backends (which *must* trust the parameter —
        // they have no simulation clock) can't silently drift from the
        // sim semantics.
        debug_assert!(
            elapsed <= 0.0 || (elapsed - (self.clock - self.last_metrics_update)).abs() < 1e-6,
            "caller-reported elapsed {elapsed} disagrees with sim clock span {}",
            self.clock - self.last_metrics_update
        );
        let elapsed = (self.clock - self.last_metrics_update).max(0.0);
        self.last_metrics_update = self.clock;
        let round_start = self.clock - elapsed;

        // Requeue jobs that lost GPUs to node failures: their recorded
        // placement no longer matches the cluster's allocation table.
        // Index-driven on both sides: the running set and the per-job
        // allocation count, no GPU-table or job-table scans.
        let mut failed = Vec::new();
        for job in jobs.running() {
            if cluster.job_gpu_count(job.id) != job.placement.len() {
                failed.push(job.id);
            }
        }
        for id in failed {
            cluster.release(id);
            if let Some(job) = jobs.get_mut(id) {
                job.placement.clear();
                job.preemptions += 1;
            }
            jobs.set_status(id, JobStatus::Suspended)
                .expect("requeued job is active");
            self.rates.invalidate_job(id);
        }

        if elapsed <= 0.0 {
            return;
        }

        // Pass 1: progress rates, incrementally maintained. Only jobs
        // invalidated by this round's delta (and any the validation sweep
        // flags) are recomputed; everything else reuses last round's rate
        // bit-for-bit. This was the O(jobs²) Collect-stage hot spot.
        let rates = self.rates.update(&self.perf, jobs, cluster);

        // Pass 2: apply progress, detect completions sub-round. Walks the
        // running index (id order, as before), not every active job.
        let mut completed = Vec::new();
        let mut reports: Vec<(JobId, &'static str, f64)> = Vec::new();
        let running: Vec<JobId> = jobs.running_ids().iter().copied().collect();
        for id in running {
            let job = jobs.get_mut(id).expect("running jobs are active");
            let Some(&rate) = rates.get(&job.id) else {
                continue;
            };
            let gpus = job.placement.len() as f64;
            job.attained_service += gpus * elapsed;
            job.running_time += elapsed;

            let overhead = if self.charge_overheads {
                job.pending_overhead.min(elapsed)
            } else {
                job.pending_overhead = 0.0;
                0.0
            };
            job.pending_overhead -= overhead;
            let effective = elapsed - overhead;
            if rate <= 0.0 || effective <= 0.0 {
                continue;
            }
            let gained = rate * effective;
            if job.completed_iters + gained >= job.total_iters {
                let needed = (job.total_iters - job.completed_iters).max(0.0);
                let finish_offset = overhead + needed / rate;
                job.completed_iters = job.total_iters;
                job.completion_time = Some(round_start + finish_offset);
                completed.push(job.id);
            } else {
                job.completed_iters += gained;
            }

            // Application metrics the client library would push.
            reports.push((job.id, "loss", job.current_loss()));
            reports.push((job.id, "iter_time", 1.0 / rate));
            if job.profile.pollux.is_some() {
                reports.push((job.id, "goodput", rate));
            }
        }
        for id in &completed {
            jobs.set_status(*id, JobStatus::Completed)
                .expect("completed job is active");
        }
        // Status reports cross the (possibly faulty) report path; without
        // a fault plan they land immediately, exactly as before.
        match &mut self.faults {
            None => {
                for (job, key, value) in reports {
                    if let Some(j) = jobs.get_mut(job) {
                        j.push_metric(key, value);
                    }
                }
            }
            Some(faults) => faults.route(self.clock, reports, jobs),
        }
        for id in completed {
            cluster.release(id);
            if let Some(job) = jobs.get_mut(id) {
                job.placement.clear();
            }
        }
    }

    fn exec_jobs(
        &mut self,
        placement: &Placement,
        cluster: &mut ClusterState,
        jobs: &mut JobState,
    ) -> PlacementOutcome {
        let outcome = apply_placement(placement, cluster, jobs, self.clock);
        debug_assert!(
            outcome.is_clean(),
            "placement policies must not double-book GPUs: {:?}",
            outcome.skipped
        );
        if !self.charge_overheads {
            for (id, _) in &placement.to_launch {
                if let Some(job) = jobs.get_mut(*id) {
                    job.pending_overhead = 0.0;
                }
            }
        }
        outcome
    }

    fn advance_round(&mut self, round_duration: f64) {
        self.clock += round_duration;
    }

    /// Earliest of: the next trace arrival, the next scheduled churn
    /// event, and the earliest predicted completion of a running job.
    ///
    /// Completion times are predicted from the last metrics checkpoint
    /// with the performance model's current rates — exact as long as
    /// placements stay frozen, which is precisely the condition under
    /// which the manager consumes the hint.
    fn next_event_hint(&self, cluster: &ClusterState, jobs: &JobState) -> Option<f64> {
        let mut earliest: Option<f64> = None;
        let mut consider = |t: f64| {
            if t.is_finite() && earliest.is_none_or(|e| t < e) {
                earliest = Some(t);
            }
        };
        if let Some((_, t)) = self.peek_next_arrival() {
            consider(t);
        }
        if let Some(t) = self.churn.next_at() {
            consider(t);
        }
        // Progress since `last_metrics_update` has not been applied yet,
        // so completions are predicted from that checkpoint — the same
        // base `update_metrics` will integrate from. One batch query: the
        // pressure map is computed once, not once per job.
        let rates = self.perf.progress_rates(jobs, cluster);
        for job in jobs.running() {
            let rate = rates.get(&job.id).copied().unwrap_or(0.0);
            if rate <= 0.0 {
                continue;
            }
            let overhead = if self.charge_overheads {
                job.pending_overhead.max(0.0)
            } else {
                0.0
            };
            consider(self.last_metrics_update + overhead + job.remaining_iters() / rate);
        }
        earliest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blox_core::cluster::NodeSpec;
    use blox_core::ids::NodeId;
    use blox_core::profile::JobProfile;

    fn cluster() -> ClusterState {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 1);
        c
    }

    fn quick_job(id: u64, arrival: f64, iters: f64) -> Job {
        // base_iter_s=1.0 on one V100 => `iters` seconds of isolated work.
        let mut p = JobProfile::synthetic("quick", 1.0);
        p.iter_model.serial_frac = 1.0; // no scaling effects
        p.iter_model.comm_frac = 0.0;
        p.restore_s = 0.0;
        Job::new(JobId(id), arrival, 1, iters, p)
    }

    #[test]
    fn arrivals_pop_in_time_order() {
        let mut b = SimBackend::from_jobs(vec![quick_job(0, 10.0, 5.0), quick_job(1, 400.0, 5.0)]);
        assert_eq!(b.peek_next_arrival().unwrap().0, JobId(0));
        assert!(b.pop_wait_queue(5.0).is_empty());
        let first = b.pop_wait_queue(10.0);
        assert_eq!(first.len(), 1);
        assert_eq!(b.arrivals_remaining(), 1);
        let second = b.pop_wait_queue(1000.0);
        assert_eq!(second.len(), 1);
        assert!(b.peek_next_arrival().is_none());
    }

    #[test]
    fn running_job_progresses_and_completes_sub_round() {
        let mut c = cluster();
        let mut jobs = JobState::new();
        let job = quick_job(0, 0.0, 100.0); // 100 s of work
        jobs.add_new_jobs(vec![job]);
        let mut b = SimBackend::from_jobs(vec![]);

        // Launch at t=0 on one GPU.
        let plan = Placement {
            to_launch: vec![(JobId(0), vec![c.free_gpus()[0]])],
            to_suspend: vec![],
        };
        b.exec_jobs(&plan, &mut c, &mut jobs);

        // One 300 s round: job (100 s of work) finishes at t=100 exactly.
        b.advance_round(300.0);
        b.update_metrics(&mut c, &mut jobs, 300.0);
        let j = jobs.get(JobId(0)).unwrap();
        assert_eq!(j.status, JobStatus::Completed);
        assert!((j.completion_time.unwrap() - 100.0).abs() < 1e-6);
        assert_eq!(c.free_gpu_count(), 4, "GPUs released on completion");
        assert_eq!(j.attained_service, 300.0);
    }

    #[test]
    fn restore_overhead_delays_completion() {
        let mut c = cluster();
        let mut jobs = JobState::new();
        let mut job = quick_job(0, 0.0, 100.0);
        job.profile.restore_s = 30.0;
        jobs.add_new_jobs(vec![job]);
        let mut b = SimBackend::from_jobs(vec![]);
        let plan = Placement {
            to_launch: vec![(JobId(0), vec![c.free_gpus()[0]])],
            to_suspend: vec![],
        };
        b.exec_jobs(&plan, &mut c, &mut jobs);
        b.advance_round(300.0);
        b.update_metrics(&mut c, &mut jobs, 300.0);
        let j = jobs.get(JobId(0)).unwrap();
        assert!((j.completion_time.unwrap() - 130.0).abs() < 1e-6);
    }

    #[test]
    fn without_overheads_skips_restore() {
        let mut c = cluster();
        let mut jobs = JobState::new();
        let mut job = quick_job(0, 0.0, 100.0);
        job.profile.restore_s = 30.0;
        jobs.add_new_jobs(vec![job]);
        let mut b = SimBackend::from_jobs(vec![]).without_overheads();
        let plan = Placement {
            to_launch: vec![(JobId(0), vec![c.free_gpus()[0]])],
            to_suspend: vec![],
        };
        b.exec_jobs(&plan, &mut c, &mut jobs);
        b.advance_round(300.0);
        b.update_metrics(&mut c, &mut jobs, 300.0);
        let j = jobs.get(JobId(0)).unwrap();
        assert!((j.completion_time.unwrap() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn node_failure_requeues_running_jobs() {
        let mut c = cluster();
        let mut jobs = JobState::new();
        jobs.add_new_jobs(vec![quick_job(0, 0.0, 1e6)]);
        let mut b = SimBackend::from_jobs(vec![]).with_churn(vec![ChurnEvent::Fail {
            at: 150.0,
            node: NodeId(0),
        }]);
        let plan = Placement {
            to_launch: vec![(JobId(0), vec![c.free_gpus()[0]])],
            to_suspend: vec![],
        };
        b.exec_jobs(&plan, &mut c, &mut jobs);
        b.advance_round(300.0);
        b.update_cluster(&mut c);
        b.update_metrics(&mut c, &mut jobs, 300.0);
        let j = jobs.get(JobId(0)).unwrap();
        assert_eq!(j.status, JobStatus::Suspended);
        assert_eq!(j.preemptions, 1);
        assert!(j.placement.is_empty());
        assert_eq!(c.total_gpus(), 0, "failed node's GPUs are gone");
    }

    #[test]
    fn dropped_status_reports_leave_metrics_stale() {
        use blox_core::fault::{FaultPlan, LinkFaults};
        let mut c = cluster();
        let mut jobs = JobState::new();
        jobs.add_new_jobs(vec![quick_job(0, 0.0, 1e6)]);
        let mut b =
            SimBackend::from_jobs(vec![]).with_faults(FaultPlan::new(1).with_base(LinkFaults {
                drop_p: 1.0,
                ..LinkFaults::default()
            }));
        let plan = Placement {
            to_launch: vec![(JobId(0), vec![c.free_gpus()[0]])],
            to_suspend: vec![],
        };
        b.exec_jobs(&plan, &mut c, &mut jobs);
        b.advance_round(300.0);
        b.update_metrics(&mut c, &mut jobs, 300.0);
        let j = jobs.get(JobId(0)).unwrap();
        assert!(j.completed_iters > 0.0, "ground truth still advances");
        assert!(j.metric("loss").is_none(), "every report was dropped");
    }

    #[test]
    fn delayed_status_reports_land_rounds_later() {
        use blox_core::fault::{FaultPlan, LinkFaults};
        let mut c = cluster();
        let mut jobs = JobState::new();
        jobs.add_new_jobs(vec![quick_job(0, 0.0, 1e6)]);
        // 250 s of report latency: a round-1 sample (release 550) is
        // invisible at the round-1 update (t=300) and lands at round 2
        // (t=600).
        let mut b =
            SimBackend::from_jobs(vec![]).with_faults(FaultPlan::new(2).with_base(LinkFaults {
                delay_s: 250.0,
                ..LinkFaults::default()
            }));
        let plan = Placement {
            to_launch: vec![(JobId(0), vec![c.free_gpus()[0]])],
            to_suspend: vec![],
        };
        b.exec_jobs(&plan, &mut c, &mut jobs);
        b.advance_round(300.0);
        b.update_metrics(&mut c, &mut jobs, 300.0);
        assert!(jobs.get(JobId(0)).unwrap().metric("loss").is_none());
        b.advance_round(300.0);
        b.update_metrics(&mut c, &mut jobs, 300.0);
        let j = jobs.get(JobId(0)).unwrap();
        let seen = j.metric("iter_time").expect("delayed report landed");
        assert_eq!(seen, 1.0, "the sample is the *old* (round-1) value");
    }

    #[test]
    fn faulty_runs_are_seed_deterministic() {
        use blox_core::fault::{FaultPlan, LinkFaults};
        let lossy = LinkFaults {
            drop_p: 0.4,
            delay_s: 150.0,
            dup_p: 0.2,
            reorder_p: 0.1,
        };
        let run = |seed: u64| {
            let mut c = cluster();
            let mut jobs = JobState::new();
            jobs.add_new_jobs(vec![quick_job(0, 0.0, 1e6), quick_job(1, 0.0, 1e6)]);
            let mut b =
                SimBackend::from_jobs(vec![]).with_faults(FaultPlan::new(seed).with_base(lossy));
            let free = c.free_gpus();
            let plan = Placement {
                to_launch: vec![(JobId(0), vec![free[0]]), (JobId(1), vec![free[1]])],
                to_suspend: vec![],
            };
            b.exec_jobs(&plan, &mut c, &mut jobs);
            for _ in 0..10 {
                b.advance_round(300.0);
                b.update_metrics(&mut c, &mut jobs, 300.0);
            }
            jobs.active()
                .map(|j| (j.id, j.metrics.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same stale-metric trajectory");
        assert_ne!(run(7), run(8), "different seeds diverge");
    }

    #[test]
    fn clock_advances_by_round() {
        let mut b = SimBackend::from_jobs(vec![]);
        assert_eq!(b.now(), 0.0);
        b.advance_round(300.0);
        b.advance_round(300.0);
        assert_eq!(b.now(), 600.0);
    }

    #[test]
    fn clone_forks_independent_state() {
        let mut a = SimBackend::from_jobs(vec![quick_job(0, 10.0, 5.0)]);
        let mut b = a.clone();
        a.advance_round(300.0);
        assert_eq!(b.now(), 0.0);
        let popped = a.pop_wait_queue(300.0);
        assert_eq!(popped.len(), 1);
        assert_eq!(b.arrivals_remaining(), 1);
        b.advance_round(300.0);
        assert_eq!(b.pop_wait_queue(300.0).len(), 1);
    }
}
