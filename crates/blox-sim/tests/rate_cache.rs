//! Exactness tests for the incremental rate cache: scripted delta
//! sequences against the from-scratch perf model, and byte-identity of
//! the parallel residual-recompute path against the serial one.

use blox_core::cluster::{ClusterState, NodeSpec};
use blox_core::ids::{GpuGlobalId, JobId, NodeId};
use blox_core::job::{Job, JobStatus};
use blox_core::profile::{JobProfile, PolluxProfile};
use blox_core::state::JobState;
use blox_sim::{PerfModel, RateCache};

/// Deterministic xorshift generator (no RNG dependency needed).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn mixed_cluster() -> ClusterState {
    let mut c = ClusterState::new();
    c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 6);
    c.add_nodes(&NodeSpec::p100_tiresias(), 2);
    c
}

fn profile_for(i: u64) -> JobProfile {
    match i % 3 {
        0 => {
            // CPU-hungry: exercises the contention fold.
            let mut p = JobProfile::synthetic("hungry", 0.2);
            p.cpus_per_gpu = 16.0;
            p.cpu_sensitivity = 0.6;
            p
        }
        1 => {
            // Pollux: exercises batch-size keys and retunes.
            let mut p = JobProfile::synthetic("pollux", 0.2);
            p.pollux = Some(PolluxProfile {
                t_grad_per_sample: 0.002,
                t_sync: 0.02,
                init_batch: 64,
                max_batch: 2048,
                gns: 400.0,
            });
            p
        }
        _ => JobProfile::synthetic("plain", 0.3),
    }
}

fn launch(c: &mut ClusterState, js: &mut JobState, id: u64, gpus: &[GpuGlobalId]) -> Option<JobId> {
    if gpus.is_empty() {
        return None;
    }
    let mut j = Job::new(JobId(id), 0.0, gpus.len() as u32, 1e9, profile_for(id));
    j.placement = gpus.to_vec();
    j.status = JobStatus::Running;
    c.allocate(JobId(id), gpus, 4.0).ok()?;
    js.add_new_jobs(vec![j]);
    Some(JobId(id))
}

fn suspend(c: &mut ClusterState, js: &mut JobState, id: JobId) {
    c.release(id);
    if let Some(j) = js.get_mut(id) {
        j.placement.clear();
    }
    js.set_status(id, JobStatus::Suspended).unwrap();
}

/// Assert a cache agrees bitwise with the from-scratch model.
fn assert_exact(cache: &mut RateCache, perf: &PerfModel, js: &JobState, c: &ClusterState) {
    let cached = cache.update(perf, js, c).clone();
    let scratch = perf.progress_rates(js, c);
    assert_eq!(
        cached.keys().collect::<Vec<_>>(),
        scratch.keys().collect::<Vec<_>>(),
        "cache must rate exactly the running set"
    );
    for (id, rate) in &scratch {
        assert_eq!(
            cached[id].to_bits(),
            rate.to_bits(),
            "job {id:?}: cached {} vs scratch {rate}",
            cached[id]
        );
    }
}

#[test]
fn scripted_delta_sequence_matches_scratch_bitwise() {
    let mut c = mixed_cluster();
    let mut js = JobState::new();
    let perf = PerfModel::default();
    let mut cache = RateCache::new().with_threads(1);

    // Fill the cluster with mixed 1/2/4-GPU jobs.
    let mut next_id = 0u64;
    loop {
        let free = c.free_gpus();
        let want = (1 << (next_id % 3)).min(free.len());
        if want == 0 {
            break;
        }
        launch(&mut c, &mut js, next_id, &free[..want]);
        next_id += 1;
    }
    assert_exact(&mut cache, &perf, &js, &c);

    // Pollux retune (a rate change with no placement change).
    let pollux_id = JobId(1);
    assert!(js.get(pollux_id).unwrap().profile.pollux.is_some());
    js.get_mut(pollux_id).unwrap().batch_size = 512;
    cache.invalidate_job(pollux_id);
    assert_exact(&mut cache, &perf, &js, &c);

    // Suspend a CPU-hungry job: its node-mates' contention relaxes.
    suspend(&mut c, &mut js, JobId(0));
    cache.invalidate_job(JobId(0));
    assert_exact(&mut cache, &perf, &js, &c);

    // Node failure mid-round (placements not yet requeued), then the
    // requeue, then revival.
    c.fail_node(NodeId(2)).unwrap();
    cache.invalidate_node(NodeId(2));
    assert_exact(&mut cache, &perf, &js, &c);
    let victims: Vec<JobId> = js
        .running()
        .filter(|j| c.job_gpu_count(j.id) != j.placement.len())
        .map(|j| j.id)
        .collect();
    for id in victims {
        suspend(&mut c, &mut js, id);
        cache.invalidate_job(id);
    }
    assert_exact(&mut cache, &perf, &js, &c);
    c.revive_node(NodeId(2)).unwrap();
    cache.invalidate_node(NodeId(2));
    assert_exact(&mut cache, &perf, &js, &c);

    // Completion.
    let done = JobId(3);
    c.release(done);
    js.get_mut(done).unwrap().placement.clear();
    js.set_status(done, JobStatus::Completed).unwrap();
    cache.invalidate_job(done);
    assert_exact(&mut cache, &perf, &js, &c);

    // A quiet round is a no-op that still agrees.
    assert_exact(&mut cache, &perf, &js, &c);
}

#[test]
fn parallel_recompute_is_byte_identical_to_serial() {
    let mut c = mixed_cluster();
    let mut js = JobState::new();
    let perf = PerfModel::default();
    // Threshold 1 forces the scoped-thread path for every recompute.
    let mut serial = RateCache::new().with_threads(1);
    let mut parallel = RateCache::new().with_threads(8).with_parallel_threshold(1);

    let mut rng = Lcg(0xB10C_CAFE);
    let mut next_id = 0u64;
    for round in 0..30 {
        // Random churny mutation each round, applied identically to the
        // state both caches observe.
        match rng.below(4) {
            0 => {
                let free = c.free_gpus();
                let want = (1 + rng.below(4) as usize).min(free.len());
                if let Some(id) = launch(&mut c, &mut js, next_id, &free[..want]) {
                    serial.invalidate_job(id);
                    parallel.invalidate_job(id);
                    next_id += 1;
                }
            }
            1 => {
                if let Some(id) = js.running_ids().iter().next().copied() {
                    suspend(&mut c, &mut js, id);
                    serial.invalidate_job(id);
                    parallel.invalidate_job(id);
                }
            }
            2 => {
                let node = NodeId(rng.below(8) as u32);
                if c.node(node).is_some_and(|n| n.alive) {
                    c.fail_node(node).unwrap();
                } else {
                    c.revive_node(node).unwrap();
                }
                serial.invalidate_node(node);
                parallel.invalidate_node(node);
            }
            _ => {
                let pollux: Vec<JobId> = js
                    .running()
                    .filter(|j| j.profile.pollux.is_some())
                    .map(|j| j.id)
                    .collect();
                if !pollux.is_empty() {
                    let id = pollux[rng.below(pollux.len() as u64) as usize];
                    js.get_mut(id).unwrap().batch_size = 64 << rng.below(5);
                    serial.invalidate_job(id);
                    parallel.invalidate_job(id);
                }
            }
        }
        let a = serial.update(&perf, &js, &c).clone();
        let b = parallel.update(&perf, &js, &c).clone();
        let scratch = perf.progress_rates(&js, &c);
        assert_eq!(a.len(), b.len(), "round {round}");
        assert_eq!(a.len(), scratch.len(), "round {round}");
        for (id, rate) in &a {
            assert_eq!(
                rate.to_bits(),
                b[id].to_bits(),
                "round {round}, job {id:?}: serial vs parallel"
            );
            assert_eq!(
                rate.to_bits(),
                scratch[id].to_bits(),
                "round {round}, job {id:?}: cache vs scratch"
            );
        }
    }
}
