//! Integration tests for the parallel sweep engine and the event-driven
//! fast path on a Figure 6-style JCT-vs-load grid: 8 load points ×
//! 3 seeds, Tiresias over the Philly trace, steady-state tracked window.
//!
//! These pin the PR's acceptance criteria deterministically:
//!
//! * a multi-threaded sweep aggregates to **byte-identical** JSON (and
//!   identical per-job records) as the same grid run serially;
//! * the event-driven fast path elides ≥ 80% of rounds on the grid — the
//!   deterministic, CI-safe proxy for the ≥5× wall-clock speedup the
//!   `sweep_grid` criterion bench measures;
//! * event-driven results agree with fixed-round stepping job for job.

use blox_core::manager::ExecMode;
use blox_policies::admission::AcceptAll;
use blox_policies::placement::ConsolidatedPlacement;
use blox_policies::scheduling::Tiresias;
use blox_sim::{PolicySet, SweepGrid};
use blox_workloads::{ModelZoo, PhillyTraceGen};

const LOADS: [f64; 8] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
const SEEDS: [u64; 3] = [42, 43, 44];

/// A scaled-down fig06 grid (fewer jobs, same shape) that stays fast in
/// debug builds.
fn grid(n_jobs: usize, loads: &[f64], seeds: &[u64], mode: ExecMode, threads: usize) -> SweepGrid {
    SweepGrid::builder()
        .trace(move |load, seed| {
            PhillyTraceGen::new(&ModelZoo::standard(), load).generate(n_jobs, seed)
        })
        .cluster_v100(32)
        .policy(PolicySet::new(
            "tiresias",
            || Box::new(AcceptAll::new()),
            || Box::new(Tiresias::new()),
            || Box::new(ConsolidatedPlacement::preferred()),
        ))
        .loads(loads)
        .seeds(seeds)
        .tracked_window(n_jobs as u64 / 4, n_jobs as u64 * 3 / 4)
        .round_duration(60.0)
        .mode(mode)
        .threads(threads)
        .build()
}

fn fig06_grid(mode: ExecMode, threads: usize) -> SweepGrid {
    grid(40, &LOADS, &SEEDS, mode, threads)
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let parallel = fig06_grid(ExecMode::EventDriven, 4).run();
    let serial = fig06_grid(ExecMode::EventDriven, 1).run_serial();
    assert_eq!(parallel.trials.len(), LOADS.len() * SEEDS.len());
    assert_eq!(parallel.to_json(), serial.to_json());
    for (p, s) in parallel.trials.iter().zip(serial.trials.iter()) {
        assert_eq!(p.policy, s.policy);
        assert_eq!((p.load, p.seed), (s.load, s.seed));
        assert_eq!(p.stats.records, s.stats.records);
        assert_eq!(p.stats.rounds, s.stats.rounds);
    }
}

#[test]
fn fast_path_elides_most_rounds_on_the_grid() {
    let report = fig06_grid(ExecMode::EventDriven, 1).run_serial();
    let total: u64 = report.trials.iter().map(|t| t.stats.rounds).sum();
    let skipped: u64 = report.trials.iter().map(|t| t.stats.skipped_rounds).sum();
    let stepped = total - skipped;
    assert!(stepped > 0, "some rounds must actually execute");
    assert!(
        total >= 5 * stepped,
        "fast path must elide >= 80% of rounds: {skipped}/{total} skipped"
    );
}

#[test]
fn event_driven_grid_agrees_with_fixed_rounds() {
    // A smaller slice of the grid: the fixed-round baseline is exactly
    // the slow path this comparison exists to replace, and debug-build
    // CI time is budgeted.
    let loads = [1.0, 3.0, 8.0];
    let seeds = [42, 43];
    let fast = grid(16, &loads, &seeds, ExecMode::EventDriven, 1).run_serial();
    let fixed = grid(16, &loads, &seeds, ExecMode::FixedRounds, 1).run_serial();
    for (a, b) in fast.trials.iter().zip(fixed.trials.iter()) {
        assert_eq!(
            a.stats.rounds, b.stats.rounds,
            "round accounting must agree"
        );
        assert_eq!(a.stats.records.len(), b.stats.records.len());
        assert!(
            (a.stats.mean_utilization() - b.stats.mean_utilization()).abs() < 1e-9,
            "bulk utilization accounting must agree"
        );
        for (ra, rb) in a.stats.records.iter().zip(b.stats.records.iter()) {
            assert_eq!(ra.id, rb.id, "same jobs in the same completion order");
            let tol = 1e-9 * rb.completion.abs().max(1.0);
            assert!(
                (ra.completion - rb.completion).abs() <= tol,
                "job {:?} completion {} vs {}",
                ra.id,
                ra.completion,
                rb.completion
            );
            assert_eq!(ra.preemptions, rb.preemptions);
        }
    }
}
