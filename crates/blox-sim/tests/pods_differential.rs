//! Differential suite for the sharded pod scheduler: a 1-pod
//! [`PodScheduler`] must be **bitwise identical** to the monolithic
//! [`BloxManager`] on real simulated workloads (the meta layer with one
//! pod must degenerate to a no-op), N-pod sharded runs must be
//! deterministic (and thread-count-independent), and migration must
//! preserve exactly-once completion under churn-driven imbalance.
//!
//! Equality is asserted on `format!("{:?}")` of [`RunStats`] — the Debug
//! impl prints record identities, completion timestamps, round counts,
//! and the utilization sum, so it is the repo's standard determinism
//! fingerprint (any f64 drift, reorder, or double-count shows up).

use blox_core::cluster::ClusterState;
use blox_core::manager::{BloxManager, ExecMode, RunConfig, StopCondition};
use blox_core::metrics::RunStats;
use blox_core::pods::{PodConfig, PodPolicies, PodScheduler};
use blox_policies::admission::AcceptAll;
use blox_policies::placement::ConsolidatedPlacement;
use blox_policies::scheduling::{Fifo, Las};
use blox_sim::{cluster_of_v100, ChurnEvent, SimBackend};
use blox_workloads::{ModelZoo, PhillyTraceGen, Trace};
use proptest::prelude::*;

fn run_cfg(mode: ExecMode, stop: StopCondition) -> RunConfig {
    RunConfig {
        round_duration: 300.0,
        max_rounds: 200_000,
        stop,
        mode,
    }
}

fn trace(n_jobs: usize, load: f64, seed: u64) -> Trace {
    PhillyTraceGen::new(&ModelZoo::standard(), load).generate(n_jobs, seed)
}

/// The evaluation-default policy stack, one fresh instance per call.
fn policies(sched: &str) -> PodPolicies {
    let scheduling: Box<dyn blox_core::policy::SchedulingPolicy> = match sched {
        "fifo" => Box::new(Fifo::new()),
        "las" => Box::new(Las::new()),
        other => panic!("unknown policy {other}"),
    };
    PodPolicies {
        admission: Box::new(AcceptAll::new()),
        scheduling,
        placement: Box::new(ConsolidatedPlacement::preferred()),
    }
}

fn monolithic(
    trace: Trace,
    cluster: ClusterState,
    run: RunConfig,
    churn: Vec<ChurnEvent>,
    sched: &str,
) -> RunStats {
    let backend = SimBackend::new(trace).with_churn(churn);
    let mut mgr = BloxManager::new(backend, cluster, run);
    let mut p = policies(sched);
    mgr.run(
        p.admission.as_mut(),
        p.scheduling.as_mut(),
        p.placement.as_mut(),
    )
}

fn one_pod(
    trace: Trace,
    cluster: ClusterState,
    run: RunConfig,
    churn: Vec<ChurnEvent>,
    sched: &str,
) -> RunStats {
    let mut pods = PodScheduler::new(run, PodConfig::default());
    pods.add_pod(
        SimBackend::new(Trace::new(vec![])).with_churn(churn),
        cluster,
        policies(sched),
    );
    pods.submit(trace.jobs);
    pods.run()
}

#[test]
fn one_pod_is_bitwise_identical_to_monolithic_on_philly_traces() {
    // The fig06-shaped grid in miniature: two policies × two execution
    // modes × two load points, tracked-window stop — the exact
    // methodology the paper figures run under.
    for sched in ["fifo", "las"] {
        for mode in [ExecMode::FixedRounds, ExecMode::EventDriven] {
            for load in [6.0, 12.0] {
                let t = trace(60, load, 42);
                let stop = StopCondition::TrackedWindowDone { lo: 20, hi: 45 };
                let mono = monolithic(
                    t.clone(),
                    cluster_of_v100(8),
                    run_cfg(mode, stop),
                    vec![],
                    sched,
                );
                let pod = one_pod(t, cluster_of_v100(8), run_cfg(mode, stop), vec![], sched);
                assert_eq!(
                    format!("{mono:?}"),
                    format!("{pod:?}"),
                    "sched={sched} mode={mode:?} load={load}"
                );
            }
        }
    }
}

#[test]
fn one_pod_matches_monolithic_under_churn() {
    // The fig12-style hardening axis: node failures and revivals mid-run
    // must flow through the sharded path identically — churn events,
    // requeues, and the event-driven skip budget all line up.
    let churn = vec![
        ChurnEvent::Fail {
            at: 3_600.0,
            node: blox_core::ids::NodeId(0),
        },
        ChurnEvent::Fail {
            at: 7_200.0,
            node: blox_core::ids::NodeId(3),
        },
        ChurnEvent::Revive {
            at: 14_400.0,
            node: blox_core::ids::NodeId(0),
        },
    ];
    for mode in [ExecMode::FixedRounds, ExecMode::EventDriven] {
        let t = trace(50, 8.0, 7);
        let stop = StopCondition::AllJobsDone;
        let mono = monolithic(
            t.clone(),
            cluster_of_v100(6),
            run_cfg(mode, stop),
            churn.clone(),
            "las",
        );
        let pod = one_pod(
            t,
            cluster_of_v100(6),
            run_cfg(mode, stop),
            churn.clone(),
            "las",
        );
        assert_eq!(format!("{mono:?}"), format!("{pod:?}"), "mode={mode:?}");
    }
}

fn sharded(trace: Trace, pods: usize, nodes_per_pod: u32, parallel: bool) -> RunStats {
    let mut sched = blox_sim::pods::sharded_v100(
        pods,
        nodes_per_pod,
        trace.jobs,
        run_cfg(ExecMode::FixedRounds, StopCondition::AllJobsDone),
        PodConfig {
            parallel,
            ..PodConfig::default()
        },
        |_| SimBackend::new(Trace::new(vec![])),
        || policies("las"),
    );
    sched.run()
}

#[test]
fn sharded_runs_are_deterministic_and_thread_count_independent() {
    let t = trace(80, 10.0, 11);
    let first = sharded(t.clone(), 4, 2, true);
    let second = sharded(t.clone(), 4, 2, true);
    let serial = sharded(t, 4, 2, false);
    assert_eq!(
        format!("{first:?}"),
        format!("{second:?}"),
        "same seed, same pods: byte-identical"
    );
    assert_eq!(
        format!("{first:?}"),
        format!("{serial:?}"),
        "parallel and serial stepping agree bitwise"
    );
}

#[test]
fn churn_overload_migrates_and_completes_every_job_exactly_once() {
    // Scripted migration scenario: pod 0 loses its only node shortly
    // after a burst lands, so its waiting backlog can only finish by
    // being stolen — every job must still complete exactly once, with
    // the lease moved off the dead pod. Jobs are clamped to the pod
    // size: a job wider than every shard can never run under sharding
    // (documented constraint), which is not what this test probes.
    let mut t = trace(24, 40.0, 3);
    for j in &mut t.jobs {
        j.requested_gpus = j.requested_gpus.min(4);
    }
    let n_jobs = t.jobs.len();
    let mut sched = PodScheduler::new(
        run_cfg(ExecMode::FixedRounds, StopCondition::AllJobsDone),
        PodConfig {
            steal_threshold: 0.1,
            steal_batch: 4,
            parallel: false,
        },
    );
    sched.add_pod(
        SimBackend::new(Trace::new(vec![])).with_churn(vec![ChurnEvent::Fail {
            at: 900.0,
            node: blox_core::ids::NodeId(0),
        }]),
        cluster_of_v100(1),
        policies("fifo"),
    );
    sched.add_pod(
        SimBackend::new(Trace::new(vec![])),
        cluster_of_v100(1),
        policies("fifo"),
    );
    sched.submit(t.jobs);
    let stats = sched.run();
    assert!(sched.migrations() > 0, "the dead pod's backlog was stolen");
    assert_eq!(stats.records.len(), n_jobs, "every job completes");
    let mut ids: Vec<u64> = stats.records.iter().map(|r| r.id.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n_jobs, "each job completes exactly once");
    for r in &stats.records {
        assert!(sched.lease(r.id).is_none(), "completed jobs keep no lease");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random trace + random churn: the 1-pod sharded run stays bitwise
    /// identical to the monolithic manager under both execution modes.
    #[test]
    fn one_pod_equals_monolithic_under_random_churn(
        seed in 0u64..1_000,
        load in 4.0f64..16.0,
        n_jobs in 20usize..45,
        fail_at in 600.0f64..20_000.0,
        fail_node in 0u32..8,
        revive_gap in 1_000.0f64..20_000.0,
        event_driven in any::<bool>(),
    ) {
        let churn = vec![
            ChurnEvent::Fail { at: fail_at, node: blox_core::ids::NodeId(fail_node) },
            ChurnEvent::Revive { at: fail_at + revive_gap, node: blox_core::ids::NodeId(fail_node) },
        ];
        let mode = if event_driven { ExecMode::EventDriven } else { ExecMode::FixedRounds };
        let t = trace(n_jobs, load, seed);
        let stop = StopCondition::AllJobsDone;
        let mono = monolithic(t.clone(), cluster_of_v100(8), run_cfg(mode, stop), churn.clone(), "las");
        let pod = one_pod(t, cluster_of_v100(8), run_cfg(mode, stop), churn, "las");
        prop_assert_eq!(format!("{mono:?}"), format!("{pod:?}"));
    }
}
