//! Chaos property suite for the simulator: proptest-generated, seeded
//! `FaultPlan`s over a fixed Philly-derived trace, combined with node
//! churn, must never violate the scheduler's safety invariants — and the
//! whole run must stay a pure function of the seed.
//!
//! Invariants pinned per generated plan:
//!
//! * **no panic** — the round loop, placement machinery, and fault layer
//!   stay total for any plan in the generated envelope;
//! * **no GPU oversubscribed** — `ClusterState::check_invariants` holds
//!   after every executed round (placement double-booking would also trip
//!   the backend's `debug_assert`);
//! * **termination** — the manager reaches its stop condition well under
//!   the round budget;
//! * **every job accounted** — each trace job ends completed (or
//!   explicitly terminated early by policy), never silently lost;
//! * **byte determinism** — running the same plan twice yields RunStats
//!   whose full debug serialization (records, rounds, utilization sums)
//!   is byte-identical: same seed ⇒ same run.
//!
//! The networked counterpart (`blox-net/tests/chaos.rs`) exercises the
//! same plans over real sockets, where wall-clock scheduling makes
//! bit-reproducibility impossible by construction; the determinism half
//! of the contract is pinned here, on the simulator.

use blox_core::cluster::ClusterState;
use blox_core::fault::{FaultEvent, FaultPlan, LinkFaults};
use blox_core::ids::NodeId;
use blox_core::manager::{BloxManager, ExecMode, RunConfig, StopCondition};
use blox_core::metrics::RunStats;
use blox_policies::admission::AcceptAll;
use blox_policies::placement::ConsolidatedPlacement;
use blox_policies::scheduling::Optimus;
use blox_sim::{cluster_of_v100, ChurnEvent, SimBackend};
use blox_workloads::{ModelZoo, PhillyTraceGen};
use proptest::prelude::*;

const MAX_ROUNDS: u64 = 120_000;
const TRACE_JOBS: usize = 16;

/// One full chaos run: the fixed Philly trace under the given fault plan
/// plus a scripted node failure/revival, stepped round by round with the
/// cluster invariants checked after every round.
fn run_chaos(plan: FaultPlan) -> RunStats {
    let zoo = ModelZoo::standard();
    let trace = PhillyTraceGen::new(&zoo, 8.0).generate(TRACE_JOBS, 11);
    let backend = SimBackend::new(trace).with_faults(plan).with_churn(vec![
        ChurnEvent::Fail {
            at: 30_000.0,
            node: NodeId(1),
        },
        ChurnEvent::Revive {
            at: 90_000.0,
            node: NodeId(1),
        },
    ]);
    let mut mgr = BloxManager::new(
        backend,
        cluster_of_v100(4),
        RunConfig {
            round_duration: 300.0,
            max_rounds: MAX_ROUNDS,
            stop: StopCondition::AllJobsDone,
            mode: ExecMode::FixedRounds,
        },
    );
    let mut admission = AcceptAll::new();
    // Optimus is metric-driven (remaining-time estimates), so stale or
    // missing status reports actually change its decisions.
    let mut scheduling = Optimus::new();
    let mut placement = ConsolidatedPlacement::preferred();
    while !mgr.should_stop() {
        mgr.step(&mut admission, &mut scheduling, &mut placement);
        mgr.cluster()
            .check_invariants()
            .expect("no GPU oversubscription in any round");
        let cluster: &ClusterState = mgr.cluster();
        let busy: u32 = cluster.gpus().filter(|g| g.job.is_some()).count() as u32;
        assert_eq!(busy + cluster.free_gpu_count(), cluster.total_gpus());
    }
    mgr.stats().clone()
}

proptest! {
    #![proptest_config(ProptestConfig {
        // PROPTEST_CASES scales this up in the nightly deep sweep; the
        // per-PR pass runs 12 distinct seeded plans (CI requires >= 3).
        cases: ProptestConfig::env_cases(12),
        seed: 0xB10C_5EED_0000_0004,
    })]

    #[test]
    fn seeded_fault_plans_are_safe_and_deterministic(
        seed in any::<u64>(),
        drop_p in 0.0f64..0.9,
        dup_p in 0.0f64..0.5,
        reorder_p in 0.0f64..0.5,
        delay_s in 0.0f64..5_000.0,
        part_from in 5_000.0f64..60_000.0,
        part_len in 300.0f64..30_000.0,
    ) {
        let plan = FaultPlan::new(seed)
            .with_base(LinkFaults { delay_s, drop_p, dup_p, reorder_p })
            .with_event(FaultEvent::Partition {
                from: part_from,
                until: part_from + part_len,
            });

        let first = run_chaos(plan.clone());
        // Termination: the stop condition was reached, not the budget.
        prop_assert!(first.rounds < MAX_ROUNDS, "run hit the round budget");
        // Every job completes or is explicitly terminated; none lost.
        prop_assert_eq!(first.records.len(), TRACE_JOBS);
        let mut ids: Vec<u64> = first.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), TRACE_JOBS, "no job may complete twice");

        // Same seed ⇒ byte-identical RunStats (records, round counts,
        // utilization accumulator — the full debug serialization).
        let second = run_chaos(plan);
        prop_assert_eq!(format!("{first:?}"), format!("{second:?}"));
    }
}
