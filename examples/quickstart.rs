//! Quickstart: the paper's Figure 2 workflow — compose admission,
//! scheduling, and placement policies and run them in simulation.
//!
//! Run with: `cargo run --release --example quickstart`

use blox::core::{BloxManager, RunConfig};
use blox::policies::admission::AcceptAll;
use blox::policies::placement::ConsolidatedPlacement;
use blox::policies::scheduling::Fifo;
use blox::sim::{cluster_of_v100, SimBackend};
use blox::workloads::{ModelZoo, PhillyTraceGen};

fn main() {
    // A 64-GPU cluster of p3.8xlarge-style servers.
    let cluster = cluster_of_v100(16);

    // 200 jobs arriving at 6 jobs/hour, Philly-like mix.
    let zoo = ModelZoo::standard();
    let trace = PhillyTraceGen::new(&zoo, 6.0).generate(200, 1);

    // The classic composition: accept-all + FIFO + consolidation.
    let mut admission = AcceptAll::new();
    let mut scheduling = Fifo::new();
    let mut placement = ConsolidatedPlacement::preferred();

    let mut mgr = BloxManager::new(SimBackend::new(trace), cluster, RunConfig::default());
    let stats = mgr.run(&mut admission, &mut scheduling, &mut placement);

    let s = stats.summary();
    println!("jobs completed:       {}", s.jobs);
    println!("avg JCT:              {:.0} s", s.avg_jct);
    println!("median JCT:           {:.0} s", s.p50_jct);
    println!("avg responsiveness:   {:.0} s", s.avg_responsiveness);
    println!("makespan:             {:.0} s", s.makespan);
    println!(
        "mean GPU utilization: {:.1}%",
        stats.mean_utilization() * 100.0
    );
}
