//! Nexus-style inference serving through the Blox round loop (paper
//! Appendix C): the global scheduler is just another scheduling policy,
//! frontends push request rates through the metric store, and the
//! routing table falls out of the allocation.
//!
//! Run with: `cargo run --release --example inference_serving`

use blox::core::ids::JobId;
use blox::core::profile::JobProfile;
use blox::core::{BloxManager, ExecMode, Job, RunConfig, StopCondition};
use blox::inference::{ModelSession, NexusPolicy};
use blox::policies::admission::AcceptAll;
use blox::policies::placement::ConsolidatedPlacement;
use blox::sim::{cluster_of_v100, SimBackend};

fn main() {
    // Three served models with different rates and SLOs.
    let sessions = vec![
        (
            JobId(0),
            ModelSession {
                name: "resnet50-classify".into(),
                rate_rps: 1_800.0,
                slo_ms: 100.0,
                lat_base_ms: 6.0,
                lat_per_item_ms: 1.2,
            },
        ),
        (
            JobId(1),
            ModelSession {
                name: "bert-qa".into(),
                rate_rps: 250.0,
                slo_ms: 50.0,
                lat_base_ms: 9.0,
                lat_per_item_ms: 2.5,
            },
        ),
        (
            JobId(2),
            ModelSession {
                name: "detector".into(),
                rate_rps: 90.0,
                slo_ms: 200.0,
                lat_base_ms: 14.0,
                lat_per_item_ms: 4.0,
            },
        ),
    ];

    // Sessions are long-running "jobs" whose request_rate metric the
    // frontends keep refreshed; here we seed it once.
    let jobs: Vec<Job> = sessions
        .iter()
        .map(|(id, s)| {
            let mut j = Job::new(
                *id,
                0.0,
                1,
                f64::MAX / 4.0,
                JobProfile::synthetic(&s.name, 0.1),
            );
            j.push_metric("request_rate", s.rate_rps);
            j
        })
        .collect();

    let mut policy = NexusPolicy::new(sessions.clone());
    let mut mgr = BloxManager::new(
        SimBackend::from_jobs(jobs),
        cluster_of_v100(16),
        RunConfig {
            round_duration: 300.0,
            max_rounds: 3,
            stop: StopCondition::TimeLimit(900.0),
            mode: ExecMode::FixedRounds,
        },
    );
    // A few rounds: allocations converge immediately for static rates.
    let mut adm = AcceptAll::new();
    let mut place = ConsolidatedPlacement::preferred();
    for _ in 0..3 {
        mgr.step(&mut adm, &mut policy, &mut place);
    }

    println!("routing table after {} rounds:", 3);
    for (_, s) in &sessions {
        let backends = policy.routing_table().backends_for(&s.name);
        let demand = s.gpu_demand();
        println!(
            "  {:<20} demand {:>5.2} GPUs, batch {:>3}, {} backend(s): {:?}",
            s.name,
            demand,
            s.max_batch(),
            backends.len(),
            backends
                .iter()
                .map(|(g, w)| format!("gpu{g}@{w:.2}"))
                .collect::<Vec<_>>()
        );
    }
}
