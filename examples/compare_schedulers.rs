//! Compare seven schedulers on the same trace and cluster — the paper's
//! core use case: evaluating scheduling research on a common footing.
//!
//! Run with: `cargo run --release --example compare_schedulers`

use blox::core::policy::SchedulingPolicy;
use blox::core::{BloxManager, RunConfig};
use blox::policies::admission::AcceptAll;
use blox::policies::placement::ConsolidatedPlacement;
use blox::policies::scheduling::{Fifo, Gavel, Las, Optimus, Srtf, Themis, Tiresias};
use blox::sim::{cluster_of_v100, SimBackend};
use blox::workloads::{ModelZoo, PhillyTraceGen};

fn main() {
    let zoo = ModelZoo::standard();
    let trace = PhillyTraceGen::new(&zoo, 8.0).generate(300, 3);

    let policies: Vec<Box<dyn SchedulingPolicy>> = vec![
        Box::new(Fifo::new()),
        Box::new(Las::new()),
        Box::new(Srtf::new()),
        Box::new(Tiresias::new()),
        Box::new(Optimus::new()),
        Box::new(Gavel::new()),
        Box::new(Themis::new()),
    ];

    println!(
        "{:<10} {:>12} {:>16} {:>12}",
        "policy", "avg JCT (s)", "avg resp (s)", "preempts"
    );
    for mut sched in policies {
        let mut mgr = BloxManager::new(
            SimBackend::new(trace.clone()),
            cluster_of_v100(32),
            RunConfig::default(),
        );
        let name = sched.name().to_string();
        let stats = mgr.run(
            &mut AcceptAll::new(),
            sched.as_mut(),
            &mut ConsolidatedPlacement::preferred(),
        );
        let s = stats.summary();
        println!(
            "{:<10} {:>12.0} {:>16.0} {:>12.2}",
            name, s.avg_jct, s.avg_responsiveness, s.avg_preemptions
        );
    }
}
