//! Writing a new scheduling policy against the Blox abstractions: a
//! deadline-aware policy in ~30 lines, composed with threshold admission —
//! the extensibility story of paper §5.
//!
//! Run with: `cargo run --release --example custom_policy`

use blox::core::cluster::ClusterState;
use blox::core::policy::{SchedulingDecision, SchedulingPolicy};
use blox::core::state::JobState;
use blox::core::{BloxManager, Job, RunConfig};
use blox::policies::admission::ThresholdAdmission;
use blox::policies::placement::ConsolidatedPlacement;
use blox::sim::{cluster_of_v100, SimBackend};
use blox::workloads::{ModelZoo, PhillyTraceGen};

/// Earliest-deadline-first over a synthetic per-job deadline:
/// arrival + 3x the isolated runtime.
struct DeadlineFirst;

impl DeadlineFirst {
    fn deadline(job: &Job) -> f64 {
        job.arrival_time + 3.0 * job.estimated_total_time()
    }
}

impl SchedulingPolicy for DeadlineFirst {
    fn schedule(
        &mut self,
        job_state: &JobState,
        _cluster: &ClusterState,
        _now: f64,
    ) -> SchedulingDecision {
        let mut jobs: Vec<&Job> = job_state.active().collect();
        jobs.sort_by(|a, b| {
            Self::deadline(a)
                .partial_cmp(&Self::deadline(b))
                .expect("deadlines are finite")
        });
        SchedulingDecision::from_priority_order(jobs)
    }

    fn name(&self) -> &str {
        "deadline-first"
    }
}

fn main() {
    let zoo = ModelZoo::standard();
    let trace = PhillyTraceGen::new(&zoo, 8.0).generate(250, 11);
    let mut mgr = BloxManager::new(
        SimBackend::new(trace),
        cluster_of_v100(32),
        RunConfig::default(),
    );
    let stats = mgr.run(
        &mut ThresholdAdmission::new(1.2),
        &mut DeadlineFirst,
        &mut ConsolidatedPlacement::preferred(),
    );
    let s = stats.summary();
    // How many jobs met the 3x-isolated-runtime deadline?
    let met = stats
        .records
        .iter()
        .filter(|r| r.jct() <= 3.0 * (r.completion - r.arrival).max(r.jct()))
        .count();
    println!(
        "avg JCT {:.0} s over {} jobs ({met} finished)",
        s.avg_jct, s.jobs
    );
}
