//! The automatic scheduler synthesizer: let Blox pick the (admission,
//! scheduling) combination at runtime via forked lookahead simulations.
//!
//! Run with: `cargo run --release --example auto_synthesizer`

use blox::core::{BloxManager, ExecMode, RunConfig, StopCondition};
use blox::sim::{cluster_of_v100, SimBackend};
use blox::synth::{AutoSynthesizer, CandidateSet, Objective};
use blox::workloads::transforms::inject_bursty_load;
use blox::workloads::{ModelZoo, PhillyTraceGen};

fn main() {
    let zoo = ModelZoo::standard();
    let base = PhillyTraceGen::new(&zoo, 4.0).generate(150, 2);
    let trace = inject_bursty_load(base, &zoo, 8.0, 4.0, 2.0, 3);

    let mut synth = AutoSynthesizer::new(CandidateSet::paper_default(), Objective::AvgJct);
    synth.eval_every = 10;
    synth.lookahead = 40;

    let mut mgr = BloxManager::new(
        SimBackend::new(trace),
        cluster_of_v100(16),
        RunConfig {
            round_duration: 300.0,
            max_rounds: 100_000,
            stop: StopCondition::AllJobsDone,
            mode: ExecMode::FixedRounds,
        },
    );
    let stats = synth.run(&mut mgr);
    println!(
        "avg JCT under synthesizer: {:.0} s",
        stats.summary().avg_jct
    );
    println!("policy timeline:");
    for rec in &synth.history {
        println!(
            "  round {:>5}: {} + {}",
            rec.round, rec.admission, rec.scheduling
        );
    }
}
