//! Deployment two ways, same policies, same protocol.
//!
//! Part 1 runs the scheduler composition on the in-process emulated
//! runtime (worker-manager threads over channels). Part 2 runs it on the
//! networked deployment subsystem (`blox-net`): a TCP scheduler backend,
//! node-manager daemons over loopback sockets, and a submission client
//! injecting the jobs open-loop — the paper's Figure 17 topology, with
//! only the backend changing (the two-module claim).
//!
//! Run with: `cargo run --release --example cluster_deployment`
//! (`BLOX_SCALE=0.02` shrinks the workload for smoke runs.)

use std::time::Duration;

use blox::core::{BloxManager, ExecMode, RunConfig, StopCondition};
use blox::net::client::{submit_timed, JobRequest};
use blox::net::node::{spawn_node, NodeConfig};
use blox::net::sched::{serve, NetBackend, SchedulerConfig};
use blox::policies::admission::AcceptAll;
use blox::policies::placement::FirstFreePlacement;
use blox::policies::scheduling::Las;
use blox::runtime::{EmulatedCluster, RuntimeBackend, RuntimeConfig};
use blox::sim::cluster_of_v100;
use blox::workloads::{ModelZoo, PhillyTraceGen, Trace};

fn scale() -> f64 {
    std::env::var("BLOX_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

fn trace(n_jobs: usize) -> Trace {
    let zoo = ModelZoo::standard();
    PhillyTraceGen::new(&zoo, 12.0)
        .runtimes(0.3, 0.8)
        .generate(n_jobs, 5)
}

fn main() {
    let n_jobs = ((40.0 * scale()) as usize).max(4);
    let runtime_cfg = RuntimeConfig {
        time_scale: 1e-4, // 1 simulated hour ≈ 0.36 wall seconds.
        emu_iter_sim_s: 30.0,
    };

    // Part 1: in-process emulated runtime (worker threads over channels).
    let cluster = cluster_of_v100(4); // 16 GPUs.
    let emu = EmulatedCluster::start(&cluster, runtime_cfg.clone());
    let backend = RuntimeBackend::new(emu, trace(n_jobs).jobs);
    let mut mgr = BloxManager::new(
        backend,
        cluster,
        RunConfig {
            round_duration: 300.0,
            max_rounds: 100_000,
            stop: StopCondition::AllJobsDone,
            mode: ExecMode::FixedRounds,
        },
    );
    let stats = mgr.run(
        &mut AcceptAll::new(),
        &mut Las::new(),
        &mut FirstFreePlacement::new(),
    );
    let s = stats.summary();
    println!(
        "in-process runtime: {} jobs, avg JCT {:.0} s, avg preemptions {:.2}",
        s.jobs, s.avg_jct, s.avg_preemptions
    );

    // Part 2: the same composition over real loopback TCP — scheduler
    // backend, 4 node-manager daemons, open-loop live submission.
    let backend = NetBackend::bind(SchedulerConfig {
        runtime: runtime_cfg.clone(),
        ..SchedulerConfig::default()
    })
    .expect("bind scheduler on an ephemeral port");
    let addr = backend.addr();
    println!("blox-net scheduler listening on {addr}");
    let daemons: Vec<_> = (0..4)
        .map(|_| {
            spawn_node(NodeConfig {
                sched: addr,
                gpus: 4,
                reconnect: false,
                faults: None,
                transport: blox::net::TransportKind::Threads,
                poller: blox::net::PollerKind::Auto,
            })
        })
        .collect();
    let timeline: Vec<(f64, JobRequest)> = trace(n_jobs)
        .jobs
        .iter()
        .map(|j| {
            (
                j.arrival_time,
                JobRequest {
                    gpus: j.requested_gpus,
                    total_iters: j.total_iters,
                    model: j.profile.model_name.clone(),
                },
            )
        })
        .collect();
    let time_scale = runtime_cfg.time_scale;
    let submitter = std::thread::spawn(move || submit_timed(addr, &timeline, time_scale));
    let report = serve(
        backend,
        RunConfig {
            round_duration: 300.0,
            max_rounds: 100_000,
            stop: StopCondition::TrackedWindowDone {
                lo: 0,
                hi: n_jobs as u64 - 1,
            },
            mode: ExecMode::FixedRounds,
        },
        4,
        Duration::from_secs(30),
        &mut AcceptAll::new(),
        &mut Las::new(),
        &mut FirstFreePlacement::new(),
    )
    .expect("networked run");
    submitter
        .join()
        .expect("submitter thread")
        .expect("all submissions accepted");
    for d in daemons {
        let _ = d.join();
    }
    let s = report.stats.summary();
    println!(
        "networked run: {} jobs over TCP, avg JCT {:.0} s, {} nodes joined, {} failures",
        s.jobs, s.avg_jct, report.nodes_joined, report.failures_detected
    );
}
