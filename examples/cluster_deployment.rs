//! Run the same scheduler composition on the deployment runtime — worker
//! managers, lease-based preemption, metric pushes — instead of the
//! simulator. Only the backend changes (the paper's two-module claim).
//!
//! Run with: `cargo run --release --example cluster_deployment`

use blox::core::{BloxManager, ExecMode, RunConfig, StopCondition};
use blox::policies::admission::AcceptAll;
use blox::policies::placement::FirstFreePlacement;
use blox::policies::scheduling::Las;
use blox::runtime::{EmulatedCluster, RuntimeBackend, RuntimeConfig};
use blox::sim::cluster_of_v100;
use blox::workloads::{ModelZoo, PhillyTraceGen};

fn main() {
    let cluster = cluster_of_v100(4); // 16 GPUs.
    let zoo = ModelZoo::standard();
    let trace = PhillyTraceGen::new(&zoo, 12.0)
        .runtimes(0.3, 0.8)
        .generate(40, 5);

    // One worker-manager thread per node; training is emulated at
    // 1 simulated hour ≈ 0.36 wall seconds.
    let emu = EmulatedCluster::start(
        &cluster,
        RuntimeConfig {
            time_scale: 1e-4,
            emu_iter_sim_s: 30.0,
        },
    );
    let backend = RuntimeBackend::new(emu, trace.jobs);
    let mut mgr = BloxManager::new(
        backend,
        cluster,
        RunConfig {
            round_duration: 300.0,
            max_rounds: 3_000,
            stop: StopCondition::AllJobsDone,
            mode: ExecMode::FixedRounds,
        },
    );
    let stats = mgr.run(
        &mut AcceptAll::new(),
        &mut Las::new(),
        &mut FirstFreePlacement::new(),
    );
    let s = stats.summary();
    println!(
        "runtime run: {} jobs, avg JCT {:.0} s, avg preemptions {:.2}",
        s.jobs, s.avg_jct, s.avg_preemptions
    );
}
