//! Cross-crate integration tests: full scheduler compositions end-to-end
//! through the simulator and runtime, plus shape assertions mirroring the
//! paper's headline observations.

use blox::core::policy::SchedulingPolicy;
use blox::core::{BloxManager, ExecMode, JobStatus, RunConfig, StopCondition};
use blox::policies::admission::{AcceptAll, ThresholdAdmission};
use blox::policies::placement::{
    BandwidthAwarePlacement, ConsolidatedPlacement, FirstFreePlacement, ProfileGuidedPlacement,
    SynergyPlacement, TiresiasPlacement,
};
use blox::policies::scheduling::{
    Fifo, Gavel, Las, LossTermination, Optimus, Pollux, Srtf, Synergy, Themis, Tiresias,
};
use blox::sim::{cluster_of_v100, ChurnEvent, SimBackend};
use blox::workloads::{ModelZoo, PhillyTraceGen, PolluxTraceGen, Trace};

fn small_trace(lambda: f64, n: usize, seed: u64) -> Trace {
    let zoo = ModelZoo::standard();
    PhillyTraceGen::new(&zoo, lambda)
        .runtimes(0.5, 1.0)
        .generate(n, seed)
}

fn run_sched(trace: Trace, nodes: u32, sched: &mut dyn SchedulingPolicy) -> blox::core::RunStats {
    let mut mgr = BloxManager::new(
        SimBackend::new(trace),
        cluster_of_v100(nodes),
        RunConfig::default(),
    );
    mgr.run(
        &mut AcceptAll::new(),
        sched,
        &mut ConsolidatedPlacement::preferred(),
    )
}

#[test]
fn every_scheduler_completes_a_trace_end_to_end() {
    let schedulers: Vec<Box<dyn SchedulingPolicy>> = vec![
        Box::new(Fifo::new()),
        Box::new(Las::new()),
        Box::new(Srtf::new()),
        Box::new(Tiresias::new()),
        Box::new(Optimus::new()),
        Box::new(Gavel::new()),
        Box::new(Pollux::new()),
        Box::new(Themis::new()),
        Box::new(Synergy::proportional()),
        Box::new(Synergy::tune()),
        Box::new(LossTermination::new(Fifo::new())),
    ];
    for mut s in schedulers {
        let name = s.name().to_string();
        let stats = run_sched(small_trace(8.0, 60, 1), 8, s.as_mut());
        assert_eq!(stats.summary().jobs, 60, "{name} lost jobs");
        assert!(stats.summary().avg_jct > 0.0, "{name} zero JCT");
    }
}

#[test]
fn every_placement_policy_completes_a_trace() {
    let placements: Vec<Box<dyn blox::core::PlacementPolicy>> = vec![
        Box::new(FirstFreePlacement::new()),
        Box::new(ConsolidatedPlacement::preferred()),
        Box::new(TiresiasPlacement::new()),
        Box::new(ProfileGuidedPlacement::new()),
        Box::new(BandwidthAwarePlacement::new()),
        Box::new(SynergyPlacement::tune()),
        Box::new(SynergyPlacement::proportional()),
    ];
    for mut p in placements {
        let name = p.name().to_string();
        let mut mgr = BloxManager::new(
            SimBackend::new(small_trace(10.0, 50, 2)),
            cluster_of_v100(8),
            RunConfig::default(),
        );
        let stats = mgr.run(&mut AcceptAll::new(), &mut Tiresias::new(), p.as_mut());
        assert_eq!(stats.summary().jobs, 50, "{name} lost jobs");
    }
}

#[test]
fn srtf_beats_fifo_on_short_job_bursts() {
    // Classic queueing result the toolkit must reproduce: with many short
    // jobs stuck behind long ones, SRTF's avg JCT <= FIFO's.
    let trace = small_trace(20.0, 80, 3);
    let fifo = run_sched(trace.clone(), 4, &mut Fifo::new())
        .summary()
        .avg_jct;
    let srtf = run_sched(trace, 4, &mut Srtf::new()).summary().avg_jct;
    assert!(srtf <= fifo * 1.02, "srtf {srtf} vs fifo {fifo}");
}

#[test]
fn admission_control_trades_responsiveness_for_jct() {
    let trace = small_trace(25.0, 100, 4);
    let mut mgr = BloxManager::new(
        SimBackend::new(trace.clone()),
        cluster_of_v100(4),
        RunConfig::default(),
    );
    let open = mgr.run(
        &mut AcceptAll::new(),
        &mut Las::new(),
        &mut ConsolidatedPlacement::preferred(),
    );
    let mut mgr2 = BloxManager::new(
        SimBackend::new(trace),
        cluster_of_v100(4),
        RunConfig::default(),
    );
    let gated = mgr2.run(
        &mut ThresholdAdmission::new(1.2),
        &mut Las::new(),
        &mut ConsolidatedPlacement::preferred(),
    );
    // Both complete everything, and gating always costs responsiveness.
    // (The JCT side of the trade-off needs steady-state load to show; the
    // Figure 12 bench asserts it at scale.)
    assert_eq!(open.summary().jobs, gated.summary().jobs);
    assert!(gated.summary().avg_responsiveness >= open.summary().avg_responsiveness);
    assert!(gated.summary().avg_jct > 0.0);
}

#[test]
fn loss_termination_shrinks_jct_with_early_convergence() {
    let trace = small_trace(10.0, 60, 5)
        .assign_early_convergence(0.75, 0.4, 6)
        .with_loss_termination(0.001);
    let epoch = run_sched(trace.clone(), 8, &mut Fifo::new())
        .summary()
        .avg_jct;
    let stats = run_sched(trace, 8, &mut LossTermination::new(Fifo::new()));
    let loss = stats.summary().avg_jct;
    assert!(loss < epoch, "loss {loss} vs epoch {epoch}");
    assert!(stats.records.iter().any(|r| r.terminated_early));
}

#[test]
fn node_failure_mid_run_requeues_and_recovers() {
    let trace = small_trace(10.0, 30, 7);
    let backend = SimBackend::new(trace).with_churn(vec![
        ChurnEvent::Fail {
            at: 4_000.0,
            node: blox::core::NodeId(0),
        },
        ChurnEvent::Revive {
            at: 40_000.0,
            node: blox::core::NodeId(0),
        },
    ]);
    let mut mgr = BloxManager::new(backend, cluster_of_v100(4), RunConfig::default());
    let stats = mgr.run(
        &mut AcceptAll::new(),
        &mut Las::new(),
        &mut ConsolidatedPlacement::preferred(),
    );
    // No job is lost to the failure; everything still completes.
    assert_eq!(stats.summary().jobs, 30);
}

#[test]
fn simulation_is_deterministic_for_a_fixed_seed() {
    let run = || {
        let stats = run_sched(small_trace(12.0, 70, 9), 8, &mut Tiresias::new());
        stats
            .records
            .iter()
            .map(|r| (r.id.0, r.completion))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn pollux_trace_runs_under_pollux_scheduler() {
    let zoo = ModelZoo::standard();
    let trace = PolluxTraceGen::new(&zoo).generate_n(60, 8);
    let mut mgr = BloxManager::new(
        SimBackend::new(trace),
        cluster_of_v100(16),
        RunConfig::default(),
    );
    let stats = mgr.run(
        &mut AcceptAll::new(),
        &mut Pollux::new(),
        &mut ConsolidatedPlacement::preferred(),
    );
    assert_eq!(stats.summary().jobs, 60);
}

#[test]
fn tracked_window_stop_condition_bounds_the_run() {
    let trace = small_trace(12.0, 120, 10);
    let mut mgr = BloxManager::new(
        SimBackend::new(trace),
        cluster_of_v100(8),
        RunConfig {
            round_duration: 300.0,
            max_rounds: 100_000,
            stop: StopCondition::TrackedWindowDone { lo: 60, hi: 90 },
            mode: ExecMode::FixedRounds,
        },
    );
    let stats = mgr.run(
        &mut AcceptAll::new(),
        &mut Fifo::new(),
        &mut ConsolidatedPlacement::preferred(),
    );
    let tracked = stats.summary_tracked(60, 90);
    assert_eq!(tracked.jobs, 31);
    // Jobs beyond the window may still be active: the run stopped early.
    assert!(mgr.jobs().active().all(|j| j.status.is_active()));
}

#[test]
fn gpu_accounting_never_double_books() {
    // Run several rounds under a churny LAS schedule and check the cluster
    // invariants at every step.
    let trace = small_trace(30.0, 60, 11);
    let mut mgr = BloxManager::new(
        SimBackend::new(trace),
        cluster_of_v100(4),
        RunConfig::default(),
    );
    let mut adm = AcceptAll::new();
    let mut sched = Las::new();
    let mut place = ConsolidatedPlacement::preferred();
    for _ in 0..200 {
        if mgr.should_stop() {
            break;
        }
        mgr.step(&mut adm, &mut sched, &mut place);
        mgr.cluster()
            .check_invariants()
            .expect("GPU table consistent");
        // Every running job's recorded placement matches the GPU table.
        for job in mgr.jobs().active() {
            if job.status == JobStatus::Running {
                assert_eq!(mgr.cluster().gpus_of_job(job.id).len(), job.placement.len());
            } else {
                assert!(job.placement.is_empty());
            }
        }
    }
}
