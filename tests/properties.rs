//! Property-based tests (proptest) on core invariants.
//!
//! The `proptest!` block below pins an explicit RNG seed through
//! `ProptestConfig`, so every CI failure reproduces bit-for-bit from a
//! plain `cargo test`: the harness derives each test's stream from this
//! seed plus the test name, and the failure message echoes both.

use blox::core::cluster::{ClusterState, NodeSpec};
use blox::core::delta::StateDelta;
use blox::core::fault::{FaultEvent, FaultPlan, LinkFaults};
use blox::core::ids::{GpuGlobalId, JobId, NodeId};
use blox::core::job::JobStatus;
use blox::core::metrics::{cdf, percentile, RunStats};
use blox::core::policy::SchedulingPolicy;
use blox::core::profile::{JobProfile, PolluxProfile};
use blox::core::snapshot::Snapshot;
use blox::core::state::JobState;
use blox::core::Job;
use blox::policies::admission::ThresholdAdmission;
use blox::policies::scheduling::{Las, Srtf};
use blox::runtime::Message;
use blox::sim::{PerfModel, RateCache};
use proptest::prelude::*;

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u32>(), any::<u32>()).prop_map(|(n, g)| Message::RegisterWorker {
            node: NodeId(n),
            gpus: g
        }),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..8),
            0.0f64..1e6,
            0.0f64..1e9,
            0.0f64..1e9,
            0.0f64..1e4,
            any::<bool>()
        )
            .prop_map(|(j, g, it, s, t, w, r)| Message::Launch {
                job: JobId(j),
                local_gpus: g,
                iter_time_s: it,
                start_iters: s,
                total_iters: t,
                warmup_s: w,
                is_rank0: r,
            }),
        any::<u64>().prop_map(|j| Message::Revoke { job: JobId(j) }),
        (any::<u64>(), any::<u64>()).prop_map(|(j, i)| Message::ExitAt {
            job: JobId(j),
            exit_iter: i
        }),
        (
            any::<u64>(),
            ".{0,32}",
            any::<f64>().prop_filter("finite", |v| v.is_finite())
        )
            .prop_map(|(j, k, v)| Message::PushMetric {
                job: JobId(j),
                key: k,
                value: v
            }),
        (any::<u64>(), 0.0f64..1e12).prop_map(|(j, t)| Message::JobDone {
            job: JobId(j),
            sim_time: t
        }),
        any::<u64>().prop_map(|j| Message::LeaseCheck { job: JobId(j) }),
        (any::<u64>(), any::<bool>()).prop_map(|(j, v)| Message::LeaseStatus {
            job: JobId(j),
            valid: v
        }),
        (any::<u64>(), 0.0f64..1e9).prop_map(|(j, i)| Message::Progress {
            job: JobId(j),
            iters: i
        }),
        (any::<u64>(), 0.0f64..1e9).prop_map(|(j, i)| Message::JobSuspended {
            job: JobId(j),
            iters: i
        }),
        Just(Message::Ack),
        (any::<u32>(), any::<u64>()).prop_map(|(n, s)| Message::Heartbeat {
            node: NodeId(n),
            seq: s
        }),
        (
            any::<u32>(),
            0.0f64..1e9,
            0.0f64..1.0,
            0.0f64..1e3,
            0.0f64..1e4,
            any::<u32>()
        )
            .prop_map(|(n, now, ts, ei, hb, pod)| Message::AssignNode {
                node: NodeId(n),
                now_sim: now,
                time_scale: ts,
                emu_iter_sim_s: ei,
                heartbeat_sim_s: hb,
                pod,
            }),
        (any::<u32>(), 0.0f64..1e9, ".{0,16}").prop_map(|(g, t, m)| Message::SubmitJob {
            gpus: g,
            total_iters: t,
            model: m
        }),
        any::<u64>().prop_map(|j| Message::JobAccepted { job: JobId(j) }),
        Just(Message::Shutdown),
    ]
}

/// Compile-time canary: adding a `Message` variant breaks this match,
/// forcing [`arb_message`] (and its sibling in
/// `crates/blox-runtime/tests/wire_proptest.rs`) to be extended —
/// `prop_oneof!` itself is not exhaustiveness-checked.
#[allow(dead_code)]
fn strategy_covers_every_variant(msg: &Message) {
    match msg {
        Message::RegisterWorker { .. }
        | Message::Launch { .. }
        | Message::Revoke { .. }
        | Message::ExitAt { .. }
        | Message::LeaseCheck { .. }
        | Message::LeaseStatus { .. }
        | Message::PushMetric { .. }
        | Message::Progress { .. }
        | Message::JobDone { .. }
        | Message::JobSuspended { .. }
        | Message::Ack
        | Message::Heartbeat { .. }
        | Message::AssignNode { .. }
        | Message::SubmitJob { .. }
        | Message::JobAccepted { .. }
        | Message::Shutdown => {}
    }
}

/// Build a scheduler snapshot from generated scalars, exercising every
/// encoded field class: mixed-liveness nodes, busy GPUs, jobs in every
/// status, a wait queue, and accumulated statistics.
fn build_snapshot(
    nodes: u32,
    job_specs: &[(u8, u32, f64, f64)],
    now: f64,
    fail_first_node: bool,
) -> Snapshot {
    let mut cluster = ClusterState::new();
    cluster.add_nodes(&NodeSpec::v100_p3_8xlarge(), nodes.max(1));
    let mut stats = RunStats::new();
    let mut active = JobState::new();
    let mut jobs = Vec::new();
    for (i, (status, gpus, total, frac)) in job_specs.iter().enumerate() {
        let mut job = Job::new(
            JobId(i as u64),
            i as f64 * 10.0,
            (*gpus).clamp(1, 4),
            total.max(1.0),
            JobProfile::synthetic(&format!("model-{i}"), 0.5),
        );
        job.completed_iters = frac.clamp(0.0, 1.0) * job.total_iters;
        job.push_metric("loss", *frac);
        match status % 5 {
            0 => job.status = JobStatus::Queued,
            1 => {
                let free = cluster.free_gpus();
                let want = job.requested_gpus as usize;
                if free.len() >= want {
                    cluster
                        .allocate(job.id, &free[..want], 4.0)
                        .expect("free GPUs allocate");
                    job.placement = free[..want].to_vec();
                    job.status = JobStatus::Running;
                    job.first_scheduled = Some(job.arrival_time);
                }
            }
            2 => {
                job.status = JobStatus::Suspended;
                job.preemptions = 1;
            }
            3 => {
                job.status = JobStatus::Completed;
                job.completion_time = Some(job.arrival_time + 500.0);
                stats.record_job(&job);
            }
            _ => {
                job.status = JobStatus::TerminatedEarly;
                job.completion_time = Some(job.arrival_time + 100.0);
                stats.record_job(&job);
            }
        }
        jobs.push(job);
    }
    active.add_new_jobs(jobs);
    active.prune_completed();
    if fail_first_node {
        let first = cluster.all_nodes().next().map(|n| n.id);
        if let Some(id) = first {
            let _ = cluster.fail_node(id);
        }
    }
    stats.record_round(
        cluster.total_gpus() - cluster.free_gpu_count(),
        cluster.total_gpus(),
        now,
    );
    let queue = vec![Job::new(
        JobId(900),
        now + 50.0,
        2,
        1000.0,
        JobProfile::synthetic("queued", 1.0),
    )];
    Snapshot {
        now,
        next_job: job_specs.len() as u64,
        expected_jobs: Some(job_specs.len() as u64 + 1),
        cluster,
        jobs: active,
        queue,
        stats,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        // PROPTEST_CASES overrides (the nightly CI deep sweep).
        cases: ProptestConfig::env_cases(256),
        seed: 0xB10C_5EED_0000_0001,
    })]

    /// Every protocol message survives an encode/decode round trip.
    #[test]
    fn wire_codec_roundtrips(msg in arb_message()) {
        let frame = msg.encode();
        let back = Message::decode(&frame).expect("decode");
        prop_assert_eq!(msg, back);
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Message::decode(&bytes);
    }

    /// Random allocate/release sequences keep the GPU table consistent and
    /// never double-book a GPU.
    #[test]
    fn gpu_accounting_is_consistent(ops in proptest::collection::vec((0u64..12, 1u32..6, any::<bool>()), 1..60)) {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 4);
        for (job, want, release) in ops {
            let id = JobId(job);
            if release {
                c.release(id);
            } else if c.gpus_of_job(id).is_empty() {
                let free = c.free_gpus();
                if free.len() >= want as usize {
                    c.allocate(id, &free[..want as usize], 4.0).expect("free GPUs allocate");
                }
            }
            c.check_invariants().expect("invariants");
            let busy: usize = c.gpus().filter(|g| g.job.is_some()).count();
            prop_assert_eq!(busy as u32 + c.free_gpu_count(), c.total_gpus());
        }
    }

    /// LAS emits jobs ordered by attained service.
    #[test]
    fn las_orders_by_service(services in proptest::collection::vec(0.0f64..1e6, 1..40)) {
        let mut js = JobState::new();
        let jobs: Vec<Job> = services.iter().enumerate().map(|(i, s)| {
            let mut j = Job::new(JobId(i as u64), 0.0, 1, 1e5, JobProfile::synthetic("p", 0.5));
            j.attained_service = *s;
            j
        }).collect();
        js.add_new_jobs(jobs);
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 1);
        let d = Las::new().schedule(&js, &c, 0.0);
        let ordered: Vec<f64> = d.allocations.iter()
            .map(|(id, _)| js.get(*id).unwrap().attained_service)
            .collect();
        prop_assert!(ordered.windows(2).all(|w| w[0] <= w[1]));
    }

    /// SRTF emits jobs ordered by estimated remaining time.
    #[test]
    fn srtf_orders_by_remaining(iters in proptest::collection::vec(1.0f64..1e6, 1..40)) {
        let mut js = JobState::new();
        let jobs: Vec<Job> = iters.iter().enumerate().map(|(i, it)| {
            Job::new(JobId(i as u64), 0.0, 1, *it, JobProfile::synthetic("p", 0.5))
        }).collect();
        js.add_new_jobs(jobs);
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 1);
        let d = Srtf::new().schedule(&js, &c, 0.0);
        let ordered: Vec<f64> = d.allocations.iter()
            .map(|(id, _)| js.get(*id).unwrap().estimated_remaining_time())
            .collect();
        prop_assert!(ordered.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Threshold admission never lets admitted demand exceed its cap, and
    /// never loses a job (admitted + pending == offered).
    #[test]
    fn threshold_admission_respects_cap(demands in proptest::collection::vec(1u32..9, 1..50), factor in 1.0f64..2.0) {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 4); // 16 GPUs.
        let js = JobState::new();
        let jobs: Vec<Job> = demands.iter().enumerate().map(|(i, d)| {
            Job::new(JobId(i as u64), 0.0, *d, 1e4, JobProfile::synthetic("p", 0.5))
        }).collect();
        let offered = jobs.len();
        let mut adm = ThresholdAdmission::new(factor);
        let admitted = {
            use blox::core::policy::AdmissionPolicy;
            adm.admit(jobs, &js, &c, 0.0)
        };
        use blox::core::policy::AdmissionPolicy;
        let admitted_gpus: u32 = admitted.iter().map(|j| j.requested_gpus).sum();
        prop_assert!(admitted_gpus as f64 <= factor * 16.0 + 1e-9);
        prop_assert_eq!(admitted.len() + adm.pending(), offered);
    }

    /// `percentile` over a sorted slice is monotone in q and bounded by
    /// the extremes; `cdf` is a valid distribution function.
    #[test]
    fn percentile_and_cdf_are_well_formed(values in proptest::collection::vec(0.0f64..1e9, 1..100)) {
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let p = percentile(&sorted, q);
            prop_assert!(p >= prev - 1e-9);
            prop_assert!(p >= sorted[0] - 1e-9 && p <= sorted[sorted.len() - 1] + 1e-9);
            prev = p;
        }
        let points = cdf(&values);
        prop_assert_eq!(points.len(), values.len());
        prop_assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
        prop_assert!(points.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    /// Scheduler snapshots round-trip byte-deterministically: decoding an
    /// encoded snapshot and re-encoding it reproduces the exact bytes,
    /// for arbitrary mixes of cluster liveness, job status, allocations,
    /// and statistics (the crash-recovery correctness bedrock: what
    /// `--restore` reads is exactly what the checkpointer observed).
    #[test]
    fn snapshot_roundtrips_byte_identically(
        nodes in 1u32..4,
        job_specs in proptest::collection::vec((any::<u8>(), 1u32..5, 1.0f64..1e6, 0.0f64..1.0), 0..10),
        now in 0.0f64..1e7,
        fail_first in any::<bool>(),
    ) {
        let snap = build_snapshot(nodes, &job_specs, now, fail_first);
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).expect("well-formed snapshot decodes");
        prop_assert_eq!(back.encode(), bytes);
        back.cluster.check_invariants().expect("restored cluster is consistent");
        prop_assert_eq!(back.jobs.total_seen(), snap.jobs.total_seen());
    }

    /// Truncating a snapshot anywhere yields `Err`, never a panic; the
    /// decoder must stay total on the exact bytes a crash mid-write (or a
    /// corrupt disk) could leave behind.
    #[test]
    fn truncated_snapshots_error_cleanly(
        job_specs in proptest::collection::vec((any::<u8>(), 1u32..5, 1.0f64..1e6, 0.0f64..1.0), 0..6),
        cuts in proptest::collection::vec(any::<u16>(), 1..32),
    ) {
        let bytes = build_snapshot(2, &job_specs, 1234.5, false).encode();
        for cut in cuts {
            let cut = cut as usize % bytes.len();
            prop_assert!(Snapshot::decode(&bytes[..cut]).is_err());
        }
    }

    /// Corrupting snapshot bytes never panics the decoder (it may decode
    /// to a different-but-valid snapshot or return `Err`).
    #[test]
    fn corrupted_snapshots_never_panic(
        job_specs in proptest::collection::vec((any::<u8>(), 1u32..5, 1.0f64..1e6, 0.0f64..1.0), 0..6),
        flips in proptest::collection::vec((any::<u32>(), any::<u8>()), 1..16),
    ) {
        let mut bytes = build_snapshot(1, &job_specs, 42.0, true).encode();
        for (pos, val) in flips {
            let idx = pos as usize % bytes.len();
            bytes[idx] = val;
        }
        let _ = Snapshot::decode(&bytes);
    }

    /// The indexed `ClusterState` agrees with the naive scan-based
    /// reference model on every observable query, after every operation
    /// of a random `add_node` / `allocate` / `release` / `fail_node` /
    /// `revive_node` sequence — and its maintained indexes verify against
    /// a from-scratch derivation (`check_invariants`) at every step. This
    /// is the model-based proof that the indexes are pure acceleration.
    #[test]
    fn indexed_cluster_matches_naive_reference(
        ops in proptest::collection::vec((0u8..5, 0u64..12, 1u32..6, 0u32..6), 1..80),
    ) {
        use blox_bench::naive::NaiveCluster;
        let spec = NodeSpec::v100_p3_8xlarge();
        let mut indexed = ClusterState::new();
        let mut naive = NaiveCluster::new();
        for _ in 0..3 {
            indexed.add_node(spec.clone());
            naive.add_node(&spec);
        }
        for (op, job, want, node_pick) in ops {
            let job = JobId(job);
            match op {
                0 => {
                    indexed.add_node(spec.clone());
                    naive.add_node(&spec);
                }
                1 => {
                    // Allocate onto the reference model's free list so both
                    // sides attempt the identical GPU set.
                    if indexed.gpus_of_job(job).is_empty() {
                        let free = naive.free_gpus();
                        if free.len() >= want as usize {
                            let take = &free[..want as usize];
                            indexed.allocate(job, take, 4.0).expect("free per model");
                            naive.allocate(job, take).expect("free per model");
                        }
                    }
                }
                2 => {
                    let a = indexed.release(job);
                    let b = naive.release(job);
                    prop_assert_eq!(a, b);
                }
                3 => {
                    let node = NodeId(node_pick % 4);
                    let a = indexed.fail_node(node);
                    let b = naive.fail_node(node);
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                    if let (Ok(a), Ok(b)) = (a, b) {
                        prop_assert_eq!(a, b, "evicted job sets must agree");
                    }
                }
                _ => {
                    let node = NodeId(node_pick % 4);
                    let a = indexed.revive_node(node);
                    let b = naive.revive_node(node);
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                }
            }
            // Every observable query agrees after every operation.
            prop_assert_eq!(indexed.total_gpus(), naive.total_gpus());
            prop_assert_eq!(indexed.free_gpu_count(), naive.free_gpu_count());
            prop_assert_eq!(indexed.free_gpus(), naive.free_gpus());
            for n in 0..6u32 {
                let node = NodeId(n);
                prop_assert_eq!(indexed.free_gpus_on(node).to_vec(), naive.free_gpus_on(node));
            }
            for j in 0..12u64 {
                let j = JobId(j);
                prop_assert_eq!(indexed.gpus_of_job(j).to_vec(), naive.gpus_of_job(j));
                prop_assert_eq!(indexed.job_gpu_count(j), naive.gpus_of_job(j).len());
            }
            indexed.check_invariants().expect("indexes stay in sync");
        }
    }

    /// The bucketed placement engine ([`FreePool`] over the maintained
    /// `PlacementIndex`) emits *bitwise-identical* GPU picks to the
    /// scan-based pre-bucket engine (`NaiveFreePool`) for every
    /// `PickStrategy` variant, across random cluster churn
    /// (allocate/release/fail/revive between rounds, invariant-checked)
    /// and random in-round pool op sequences (picks interleaved with
    /// `add`/`remove`) over pools rebuilt each round — the model-based
    /// proof that the bucketed index is pure acceleration of Place.
    #[test]
    fn bucketed_picks_match_scratch_freepool(
        rounds in proptest::collection::vec(
            (proptest::collection::vec((0u8..4, 0u64..16, 1u32..5, 0u32..6), 0..6),
             proptest::collection::vec((0u8..7, 1u32..7, any::<u64>()), 1..12)),
            1..8),
    ) {
        use blox::core::place_util::FreePool;
        use blox_bench::naive::NaiveFreePool;
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 4);
        c.add_nodes(&NodeSpec::p100_tiresias(), 2);
        let mut next_job = 0u64;
        for (churn, pool_ops) in rounds {
            // Between-round churn drives the cluster's persistent index
            // through the same mutators the round pipeline's delta ops
            // use; `check_invariants` re-derives the bucket index from
            // scratch and compares after every mutation.
            for (op, job, want, node_pick) in churn {
                match op {
                    0 => {
                        let id = JobId(next_job);
                        next_job += 1;
                        let free = c.free_gpus();
                        if free.len() >= want as usize {
                            c.allocate(id, &free[..want as usize], 4.0)
                                .expect("free GPUs allocate");
                        }
                    }
                    1 => {
                        c.release(JobId(job % next_job.max(1)));
                    }
                    2 => {
                        let _ = c.fail_node(NodeId(node_pick));
                    }
                    _ => {
                        let _ = c.revive_node(NodeId(node_pick));
                    }
                }
                c.check_invariants().expect("bucket index matches rebuild after churn");
            }
            // In-round: both engines see the identical pool and op
            // sequence; every pick must agree bitwise.
            let mut fast = FreePool::new(&c);
            let mut slow = NaiveFreePool::new(&c);
            let mut drained: Vec<GpuGlobalId> = Vec::new();
            for (op, n, pick) in pool_ops {
                match op {
                    // PickStrategy::ConsolidatedStrict
                    0 => {
                        let a = fast.take_consolidated(n);
                        let b = slow.take_consolidated(n);
                        prop_assert_eq!(&a, &b, "consolidated({}) diverged", n);
                        drained.extend(a.into_iter().flatten());
                    }
                    // PickStrategy::ConsolidatedPreferred
                    1 => {
                        let a = fast.take_consolidated_or_spread(n);
                        let b = slow.take_consolidated_or_spread(n);
                        prop_assert_eq!(&a, &b, "spread({}) diverged", n);
                        drained.extend(a.into_iter().flatten());
                    }
                    // PickStrategy::Defragment
                    2 => {
                        let a = fast.take_defragmenting(n);
                        let b = slow.take_defragmenting(n);
                        prop_assert_eq!(&a, &b, "defragment({}) diverged", n);
                        drained.extend(a.into_iter().flatten());
                    }
                    // PickStrategy::FirstFree
                    3 => {
                        let a = fast.take_first_free(n);
                        let b = slow.take_first_free(n);
                        prop_assert_eq!(&a, &b, "first_free({}) diverged", n);
                        drained.extend(a.into_iter().flatten());
                    }
                    // PickStrategy::BandwidthAware: the subset-scoring
                    // engine is unchanged (per-node map walk in both
                    // pools), so mirror its effect on the reference and
                    // check the fallback path on failure — exactly the
                    // strategy's `.or_else(spread)` composition.
                    4 => {
                        match fast.take_bandwidth_aware(n) {
                            Some(got) => {
                                slow.remove(&got);
                                drained.extend(got);
                            }
                            None => {
                                prop_assert!(
                                    (0..6).all(|i| (slow.on_node(NodeId(i)).len() as u32) < n),
                                    "bandwidth_aware({}) gave up with a fitting node", n
                                );
                                let a = fast.take_consolidated_or_spread(n);
                                let b = slow.take_consolidated_or_spread(n);
                                prop_assert_eq!(&a, &b, "bandwidth fallback({}) diverged", n);
                                drained.extend(a.into_iter().flatten());
                            }
                        }
                    }
                    // Suspension hands GPUs back mid-round (duplicates
                    // and repeats included — both pools must ignore them
                    // identically).
                    5 => {
                        if !drained.is_empty() {
                            let start = pick as usize % drained.len();
                            let end = (start + n as usize).min(drained.len());
                            let back: Vec<GpuGlobalId> = drained[start..end].to_vec();
                            fast.add(&back);
                            slow.add(&back);
                        }
                    }
                    // A kept job pins specific GPUs mid-round.
                    _ => {
                        let node = NodeId(pick as u32 % 6);
                        let take = (n as usize).min(slow.on_node(node).len());
                        let victims: Vec<GpuGlobalId> = slow.on_node(node)[..take].to_vec();
                        fast.remove(&victims);
                        slow.remove(&victims);
                        drained.extend(victims);
                    }
                }
                prop_assert_eq!(fast.total(), slow.total());
                for i in 0..6u32 {
                    let node = NodeId(i);
                    prop_assert_eq!(fast.on_node(node), slow.on_node(node));
                }
            }
        }
    }

    /// `JobState`'s status index sets stay consistent with a full scan
    /// under random `set_status` transitions, and index-driven iteration
    /// matches the scan-filter order exactly.
    #[test]
    fn job_state_indexes_match_scans(
        transitions in proptest::collection::vec((0u64..20, 0u8..6), 1..100),
    ) {
        let mut s = JobState::new();
        s.add_new_jobs((0..20).map(|i| {
            Job::new(JobId(i), i as f64, 1, 1e5, JobProfile::synthetic("p", 0.5))
        }).collect());
        for (id, status) in transitions {
            let status = match status {
                0 => JobStatus::Queued,
                1 => JobStatus::Running,
                2 => JobStatus::Suspended,
                3 => JobStatus::Completed,
                4 => JobStatus::TerminatedEarly,
                _ => JobStatus::Failed,
            };
            if s.get(JobId(id)).is_some() {
                s.set_status(JobId(id), status).expect("active job");
            }
            s.check_invariants().expect("index sets match scans");
            let running_scan: Vec<JobId> = s.active()
                .filter(|j| j.status == JobStatus::Running).map(|j| j.id).collect();
            let running_idx: Vec<JobId> = s.running().map(|j| j.id).collect();
            prop_assert_eq!(running_idx, running_scan);
            let waiting_scan: Vec<JobId> = s.active()
                .filter(|j| matches!(j.status, JobStatus::Queued | JobStatus::Suspended))
                .map(|j| j.id).collect();
            let waiting_idx: Vec<JobId> = s.waiting().map(|j| j.id).collect();
            prop_assert_eq!(waiting_idx, waiting_scan);
            prop_assert_eq!(s.running_count(), s.running().count());
        }
        // Pruning drains exactly the done set, in id order.
        let done_scan: Vec<JobId> = s.active()
            .filter(|j| j.status.is_done()).map(|j| j.id).collect();
        prop_assert_eq!(s.prune_completed(), done_scan);
        s.check_invariants().expect("index sets after prune");
    }

    /// A delta-fed Tiresias (incremental order cache) emits byte-identical
    /// decisions to a fresh instance that re-sorts the world each round,
    /// across random admission/completion/progress interleavings.
    #[test]
    fn cached_tiresias_matches_full_sort(
        rounds in proptest::collection::vec(
            (proptest::collection::vec((0u64..500, 0.0f64..1e5), 0..4),
             proptest::collection::vec(0u64..64, 0..3),
             proptest::collection::vec((0u64..64, 0.0f64..8000.0), 0..6)),
            1..30),
    ) {
        use blox::core::policy::SchedulingPolicy;
        use blox::policies::scheduling::Tiresias;
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 2);
        let mut js = JobState::new();
        let mut cached = Tiresias::new();
        let mut next_id = 0u64;
        for (admit, complete, progress) in rounds {
            let mut delta = StateDelta::new();
            // Completions first (the pipeline prunes before admitting).
            for pick in complete {
                let ids: Vec<JobId> = js.active().map(|j| j.id).collect();
                if ids.is_empty() { continue; }
                let id = ids[pick as usize % ids.len()];
                js.set_status(id, JobStatus::Completed).expect("active");
            }
            delta.completed = js.prune_completed();
            // Admissions.
            let mut batch = Vec::new();
            for (_, arrival) in admit {
                let id = JobId(next_id);
                next_id += 1;
                batch.push(Job::new(id, arrival, 1, 1e6, JobProfile::synthetic("p", 0.5)));
                delta.admitted.push(id);
            }
            js.add_new_jobs(batch);
            // Service accrual (may cross Tiresias queue thresholds).
            for (pick, add) in progress {
                let ids: Vec<JobId> = js.active().map(|j| j.id).collect();
                if ids.is_empty() { continue; }
                let id = ids[pick as usize % ids.len()];
                js.get_mut(id).expect("active").attained_service += add;
            }
            cached.observe_delta(&delta, &js);
            let fast = cached.schedule(&js, &c, 0.0);
            let slow = Tiresias::new().schedule(&js, &c, 0.0);
            prop_assert_eq!(fast, slow, "cached order diverged from full sort");
        }
    }

    /// The incremental rate cache stays *bitwise* equal to a from-scratch
    /// `PerfModel::progress_rates` recompute across random op sequences:
    /// launches, suspensions, completions, Pollux retunes, and node
    /// churn hitting mid-round (placements not yet requeued) — the same
    /// model as the indexed-vs-naive cluster check above.
    #[test]
    fn cached_rates_match_scratch_recompute(
        ops in proptest::collection::vec((0u8..6, any::<u64>(), 1u8..5), 1..40),
    ) {
        let mut c = ClusterState::new();
        c.add_nodes(&NodeSpec::v100_p3_8xlarge(), 3);
        c.add_nodes(&NodeSpec::p100_tiresias(), 1);
        let mut js = JobState::new();
        let perf = PerfModel::default();
        let mut cache = RateCache::new().with_threads(1);
        let mut next_id = 0u64;
        for (op, pick, size) in ops {
            match op {
                // Launch a new job; profile class varies with the id so
                // Pollux keys, CPU contention, and plain iteration models
                // all appear in one run.
                0 => {
                    let free = c.free_gpus();
                    let want = (size as usize).min(free.len());
                    if want > 0 {
                        let id = JobId(next_id);
                        next_id += 1;
                        let mut p = match id.0 % 3 {
                            0 => {
                                let mut p = JobProfile::synthetic("hungry", 0.2);
                                p.cpus_per_gpu = 16.0;
                                p.cpu_sensitivity = 0.6;
                                p
                            }
                            1 => JobProfile::synthetic("plain", 0.3),
                            _ => JobProfile::synthetic("pollux", 0.2),
                        };
                        if id.0 % 3 == 2 {
                            p.pollux = Some(PolluxProfile {
                                t_grad_per_sample: 0.002,
                                t_sync: 0.02,
                                init_batch: 64,
                                max_batch: 2048,
                                gns: 400.0,
                            });
                        }
                        let mut j = Job::new(id, 0.0, want as u32, 1e9, p);
                        j.placement = free[..want].to_vec();
                        j.status = JobStatus::Running;
                        c.allocate(id, &free[..want], 4.0).expect("free GPUs allocate");
                        js.add_new_jobs(vec![j]);
                        cache.invalidate_job(id);
                    }
                }
                // Suspend a running job.
                1 => {
                    let ids: Vec<JobId> = js.running_ids().iter().copied().collect();
                    if !ids.is_empty() {
                        let id = ids[pick as usize % ids.len()];
                        c.release(id);
                        js.get_mut(id).expect("running").placement.clear();
                        js.set_status(id, JobStatus::Suspended).expect("running");
                        cache.invalidate_job(id);
                    }
                }
                // Complete (and prune) a running job.
                2 => {
                    let ids: Vec<JobId> = js.running_ids().iter().copied().collect();
                    if !ids.is_empty() {
                        let id = ids[pick as usize % ids.len()];
                        c.release(id);
                        js.get_mut(id).expect("running").placement.clear();
                        js.set_status(id, JobStatus::Completed).expect("running");
                        js.prune_completed();
                        cache.invalidate_job(id);
                    }
                }
                // Retune a Pollux job's batch size (rate change, no
                // placement change).
                3 => {
                    let pollux: Vec<JobId> = js.running()
                        .filter(|j| j.profile.pollux.is_some())
                        .map(|j| j.id)
                        .collect();
                    if !pollux.is_empty() {
                        let id = pollux[pick as usize % pollux.len()];
                        js.get_mut(id).expect("running").batch_size = 64u64 << (size % 5);
                        cache.invalidate_job(id);
                    }
                }
                // Fail an alive node *without* requeueing its jobs — the
                // mid-churn window the liveness fix covers.
                4 => {
                    let alive: Vec<NodeId> = c.all_nodes()
                        .filter(|n| n.alive)
                        .map(|n| n.id)
                        .collect();
                    if !alive.is_empty() {
                        let node = alive[pick as usize % alive.len()];
                        c.fail_node(node).expect("alive node fails");
                        cache.invalidate_node(node);
                    }
                }
                // Revive a dead node (exercises the degraded-entry path).
                _ => {
                    let dead: Vec<NodeId> = c.all_nodes()
                        .filter(|n| !n.alive)
                        .map(|n| n.id)
                        .collect();
                    if !dead.is_empty() {
                        let node = dead[pick as usize % dead.len()];
                        c.revive_node(node).expect("dead node revives");
                        cache.invalidate_node(node);
                    }
                }
            }
            let cached = cache.update(&perf, &js, &c).clone();
            let scratch = perf.progress_rates(&js, &c);
            prop_assert_eq!(cached.len(), scratch.len());
            for (id, rate) in &scratch {
                prop_assert_eq!(
                    cached[id].to_bits(), rate.to_bits(),
                    "job {:?}: cached {} vs scratch {}", id, cached[id], rate
                );
            }
        }
    }

    /// Fault plans are pure functions of `(seed, link)`: equal pairs give
    /// equal verdict streams, and scripted partitions black-hole every
    /// message inside their window regardless of the random draws.
    #[test]
    fn fault_plans_are_deterministic_and_partition_totally(
        seed in any::<u64>(),
        drop_p in 0.0f64..1.0,
        dup_p in 0.0f64..1.0,
        reorder_p in 0.0f64..1.0,
        delay_s in 0.0f64..1e4,
        part_from in 0.0f64..1e4,
        part_len in 1.0f64..1e4,
    ) {
        let plan = FaultPlan::new(seed)
            .with_base(LinkFaults { delay_s, drop_p, dup_p, reorder_p })
            .with_event(FaultEvent::Partition { from: part_from, until: part_from + part_len });
        let mut a = plan.state(1);
        let mut b = plan.state(1);
        for i in 0..128 {
            let t = i as f64 * 100.0;
            let (va, vb) = (a.verdict(t), b.verdict(t));
            prop_assert_eq!(va, vb);
            if t >= part_from && t < part_from + part_len {
                prop_assert_eq!(va, blox::core::fault::FaultVerdict::Drop);
            }
        }
    }
}
