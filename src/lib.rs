//! Blox: a modular toolkit for deep-learning cluster schedulers.
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`core`] — shared state, policy traits, and the round-based loop.
//! * [`sim`] — the discrete round-based cluster simulator.
//! * [`workloads`] — the model zoo and trace generators/parsers.
//! * [`policies`] — admission, scheduling, and placement policies
//!   (FIFO, LAS, Tiresias, Optimus, Gavel, Pollux, Themis, Synergy, ...).
//! * [`runtime`] — the deployment runtime (central scheduler, worker
//!   managers, client library, lease protocol).
//! * [`net`] — the networked deployment subsystem (framed-TCP transport,
//!   `bloxschedd`/`bloxnoded` daemons, live job submission).
//! * [`synth`] — the automatic scheduler synthesizer.
//! * [`inference`] — the Nexus-style inference-scheduling prototype
//!   (paper Appendix C).
//!
//! # Quickstart
//!
//! The canonical scheduler composition from the paper's Figure 2 — an
//! accept-all admission policy, FIFO scheduling, consolidated placement —
//! running in simulation:
//!
//! ```
//! use blox::core::{BloxManager, RunConfig, StopCondition};
//! use blox::policies::{admission::AcceptAll, placement::ConsolidatedPlacement,
//!                      scheduling::Fifo};
//! use blox::sim::SimBackend;
//! use blox::workloads::{philly::PhillyTraceGen, ModelZoo};
//!
//! let zoo = ModelZoo::standard();
//! let trace = PhillyTraceGen::new(&zoo, 4.0).generate(40, 7);
//! let cluster = blox::sim::cluster_of_v100(8); // 8 nodes x 4 GPUs
//! let backend = SimBackend::new(trace);
//! let mut mgr = BloxManager::new(backend, cluster, RunConfig::default());
//! let stats = mgr.run(
//!     &mut AcceptAll::new(),
//!     &mut Fifo::new(),
//!     &mut ConsolidatedPlacement::preferred(),
//! );
//! assert_eq!(stats.summary().jobs, 40);
//! ```

pub use blox_core as core;
pub use blox_inference as inference;
pub use blox_net as net;
pub use blox_policies as policies;
pub use blox_runtime as runtime;
pub use blox_sim as sim;
pub use blox_synth as synth;
pub use blox_workloads as workloads;
